// Package mbsp implements a mini-batch stream-processing engine — the
// substrate that substitutes for Spark Streaming in the paper. It provides
// exactly the dataflow pieces the DistStream pipeline needs:
//
//   - a driver that runs synchronous parallel stages over partitions,
//   - broadcast variables (the micro-cluster model is broadcast to every
//     task at the start of each batch, §V-A),
//   - a group-by-key shuffle between the assign and local-update stages,
//   - per-task metrics, from which straggler statistics (§VII-D2) and the
//     per-stage latency breakdown are derived,
//   - two executors: an in-process goroutine pool and a TCP executor
//     (package rpcexec) that ships tasks to worker processes with gob.
//
// Tasks are expressed as registered, named operations rather than
// closures so that the same pipeline code runs on both executors (a
// remote worker cannot receive a Go closure; it links the same operation
// registry instead — the moral equivalent of Spark shipping a jar).
package mbsp

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Item is one opaque element flowing through a stage.
type Item = any

// Partition is an ordered slice of items processed by one task.
type Partition []Item

// KeyedItem is an item tagged with a shuffle key. Stages that feed a
// group-by-key emit these.
type KeyedItem struct {
	Key  uint64
	Item Item
}

// Group is the result of grouping keyed items: all items that share a key,
// in the order they were emitted across source partitions (source
// partition index first, then position).
type Group struct {
	Key   uint64
	Items []Item
}

// TaskMetrics records the execution of one task.
type TaskMetrics struct {
	Stage    string
	TaskID   int
	WorkerID int
	// Duration is the task's wall-clock execution time, including any
	// injected straggler delay.
	Duration time.Duration
	// InItems and OutItems count the task's input and output sizes.
	InItems, OutItems int
	// Retries counts extra executions beyond the first attempt: op-level
	// re-runs on the local executor, transport retries and re-dispatches
	// after a worker loss on the TCP executor. 0 means the task succeeded
	// first try.
	Retries int
	// Speculative marks a task for which a backup copy was launched
	// because the primary exceeded the stage's straggler bound;
	// SpeculativeWin additionally marks that the backup's result was the
	// one committed.
	Speculative    bool
	SpeculativeWin bool
}

// StageMetrics aggregates one stage execution.
type StageMetrics struct {
	Stage string
	Tasks []TaskMetrics
	// Wall is the stage's end-to-end wall time (barrier to barrier).
	Wall time.Duration
	// Failed marks a stage whose execution returned an error. Task metrics
	// for the tasks that did complete are still present, so callers can
	// tell a failed stage from a successful one instead of inferring it
	// from a missing result.
	Failed bool
}

// Retries sums the per-task retry counts: how many extra task executions
// (beyond one per task) the stage needed to complete.
func (s StageMetrics) Retries() int {
	n := 0
	for _, t := range s.Tasks {
		n += t.Retries
	}
	return n
}

// SpeculativeLaunches counts tasks for which a backup copy was
// dispatched.
func (s StageMetrics) SpeculativeLaunches() int {
	n := 0
	for _, t := range s.Tasks {
		if t.Speculative {
			n++
		}
	}
	return n
}

// SpeculativeWins counts tasks whose committed result came from the
// backup copy rather than the original straggling attempt.
func (s StageMetrics) SpeculativeWins() int {
	n := 0
	for _, t := range s.Tasks {
		if t.SpeculativeWin {
			n++
		}
	}
	return n
}

// StragglerThreshold is the paper's straggler definition: a task is a
// straggler when its execution time exceeds 1.2x the stage average.
const StragglerThreshold = 1.2

// TotalTaskTime returns the sum of all task durations (the work the stage
// would cost a single core).
func (s StageMetrics) TotalTaskTime() time.Duration {
	var total time.Duration
	for _, t := range s.Tasks {
		total += t.Duration
	}
	return total
}

// MeanTaskTime returns the average task duration, or 0 with no tasks.
func (s StageMetrics) MeanTaskTime() time.Duration {
	if len(s.Tasks) == 0 {
		return 0
	}
	return s.TotalTaskTime() / time.Duration(len(s.Tasks))
}

// MaxTaskTime returns the slowest task's duration.
func (s StageMetrics) MaxTaskTime() time.Duration {
	var m time.Duration
	for _, t := range s.Tasks {
		if t.Duration > m {
			m = t.Duration
		}
	}
	return m
}

// Stragglers counts tasks slower than StragglerThreshold times the mean
// (the paper's definition: "tasks with execution time that exceed 1.2X of
// the average").
func (s StageMetrics) Stragglers() int {
	mean := s.MeanTaskTime()
	if mean == 0 {
		return 0
	}
	limit := time.Duration(float64(mean) * StragglerThreshold)
	n := 0
	for _, t := range s.Tasks {
		if t.Duration > limit {
			n++
		}
	}
	return n
}

// StragglerFraction returns Stragglers()/len(Tasks), or 0 with no tasks.
func (s StageMetrics) StragglerFraction() float64 {
	if len(s.Tasks) == 0 {
		return 0
	}
	return float64(s.Stragglers()) / float64(len(s.Tasks))
}

// Capabilities describes what an executor can do beyond the required
// Executor surface, so schedules select behavior without executor-specific
// type switches scattered through the driver.
type Capabilities struct {
	// DeltaBroadcast reports that the executor ships broadcast deltas to
	// workers holding the previous value (the DeltaBroadcaster interface,
	// enabled in its configuration).
	DeltaBroadcast bool
	// AsyncDispatch reports that the executor implements StageDispatcher
	// natively: fused broadcast+task delivery and streamed per-task
	// completion callbacks. Executors without it still run dispatched
	// stages through an engine-level emulation, just without the overlap.
	AsyncDispatch bool
	// ElasticMembership reports that the executor implements
	// MembershipReconciler: its worker set is a runtime quantity, and the
	// driver should reconcile membership at every batch boundary so
	// departed workers are retired and joiners admitted.
	ElasticMembership bool
}

// Capable is the capability-discovery interface. Executors that do not
// implement it are assumed to have no optional capabilities beyond what
// the legacy DeltaBroadcaster type-assert reveals.
type Capable interface {
	Capabilities() Capabilities
}

// StageSpec describes one dispatched stage: a parallel map over Inputs,
// optionally fused with a broadcast that every worker must observe before
// running any task of the stage, and an optional per-task completion
// callback that streams outputs to the caller as they arrive.
type StageSpec struct {
	// Stage and Op name the stage (metrics) and the registered operation.
	Stage string
	Op    string
	// Inputs are the task partitions; task i processes Inputs[i].
	Inputs []Partition
	// BroadcastID, when non-empty, fuses a broadcast into the dispatch:
	// BroadcastValue is published under the id to every live worker before
	// that worker runs any task of this stage. BroadcastDelta, when
	// non-nil, is offered to workers holding the previous version exactly
	// as in DeltaBroadcaster.BroadcastDelta.
	BroadcastID    string
	BroadcastValue Item
	BroadcastDelta Item
	// OnTaskDone, when set, is called exactly once per successful task
	// with its output partition, as soon as the output is available. Calls
	// may come from concurrent dispatch goroutines; the callback must be
	// safe for concurrent use. Failed or re-dispatched attempts do not
	// fire it; the eventual successful attempt does.
	OnTaskDone func(task int, out Partition)
}

// StageDispatcher is an optional Executor capability (advertised through
// Capabilities().AsyncDispatch): executing a whole StageSpec with the
// broadcast fused into task delivery and outputs streamed through
// OnTaskDone. Outputs are still returned in input order, like RunTasks.
type StageDispatcher interface {
	DispatchStage(ctx context.Context, spec StageSpec) ([]Partition, []TaskMetrics, error)
}

// MembershipDelta reports what one membership reconciliation changed:
// which workers entered the dispatch rotation and which left it. The
// slot count (Parallelism) never changes, so task partitioning — and
// therefore output — is unaffected by churn.
type MembershipDelta struct {
	// Joined lists worker addresses admitted (or readmitted) into the
	// rotation, already caught up via full broadcast replay.
	Joined []string
	// Departed lists worker addresses that left the rotation since the
	// previous reconciliation (crash, exhausted probes, or clean drain).
	Departed []string
}

// MembershipReconciler is an optional Executor capability (advertised
// through Capabilities().ElasticMembership): applying pending membership
// changes — retiring departed workers, admitting joiners into vacant
// slots — at a quiescent point. The driver must call it only between
// batches, never while a stage is in flight.
type MembershipReconciler interface {
	ReconcileMembership(ctx context.Context) (MembershipDelta, error)
}

// BroadcastError marks a dispatched stage that failed while publishing
// its fused broadcast (as opposed to a task failure), so callers can
// report the two phases distinctly.
type BroadcastError struct {
	ID  string
	Err error
}

// Error implements error.
func (e *BroadcastError) Error() string {
	return fmt.Sprintf("mbsp: broadcast %q: %v", e.ID, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *BroadcastError) Unwrap() error { return e.Err }

// Executor runs the tasks of one stage in parallel. Implementations must
// return outputs in input-partition order (output[i] is the result of
// inputs[i]) regardless of scheduling.
type Executor interface {
	// Parallelism returns the number of workers (the paper's parallelism
	// degree p).
	Parallelism() int
	// Broadcast publishes a value under an id so that subsequent tasks can
	// read it via TaskContext.Broadcast. Re-broadcasting an id replaces
	// the value (the model is re-broadcast every batch). The context
	// bounds the publication; a canceled context aborts it.
	Broadcast(ctx context.Context, id string, value Item) error
	// RunTasks executes the named op over each input partition as one
	// task, in parallel, and returns per-partition outputs plus metrics.
	// Cancelling the context stops the stage between tasks (and, for
	// executors with in-flight network calls, interrupts those calls);
	// RunTasks then returns the context's error.
	RunTasks(ctx context.Context, stage, op string, inputs []Partition) ([]Partition, []TaskMetrics, error)
	// Close releases executor resources. The executor is unusable after.
	Close() error
}

// BroadcastDelta is implemented by broadcast values that are differences
// against the value previously published under the same id. An executor
// that ships deltas applies them against the receiver's current value;
// ApplyDelta must not mutate old (other tasks may still read it) and must
// fail — never guess — when old is not the base the delta was computed
// from, so the sender can fall back to publishing the full value.
type BroadcastDelta interface {
	ApplyDelta(old Item) (Item, error)
}

// DeltaBroadcaster is an optional Executor capability: publishing a
// broadcast as a small delta for receivers that are known to hold the
// previous value, with the full value as the universal fallback (fresh
// workers, reconnects, failed delta application). Executors without the
// capability — or with it disabled — receive the full value through the
// plain Broadcast path instead.
type DeltaBroadcaster interface {
	// BroadcastDelta publishes full under id, shipping delta (which must
	// implement BroadcastDelta) to receivers that hold the previous
	// version and full to everyone else. After it returns, every live
	// receiver observes a value identical to full.
	BroadcastDelta(ctx context.Context, id string, full, delta Item) error
	// DeltaBroadcastEnabled reports whether deltas are actually shipped;
	// callers can skip computing a delta when false.
	DeltaBroadcastEnabled() bool
}

// Common engine errors.
var (
	// ErrUnknownOp is returned when a task references an op name that is
	// not in the registry.
	ErrUnknownOp = errors.New("mbsp: unknown op")
	// ErrClosed is returned when using a closed executor.
	ErrClosed = errors.New("mbsp: executor closed")
	// ErrNoBroadcast is returned by TaskContext.Broadcast for missing ids.
	ErrNoBroadcast = errors.New("mbsp: broadcast id not found")
)

// TaskError wraps a failure of a single task with its location.
type TaskError struct {
	Stage  string
	TaskID int
	Err    error
}

// Error implements error.
func (e *TaskError) Error() string {
	return fmt.Sprintf("mbsp: stage %q task %d: %v", e.Stage, e.TaskID, e.Err)
}

// Unwrap exposes the underlying task failure.
func (e *TaskError) Unwrap() error { return e.Err }

// PanicError is a panic inside an op, caught at the task boundary and
// converted into an ordinary task error so one bad record cannot take
// down an executor. It flows through the same retry/abort path as any
// other task failure.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("mbsp: op panicked: %v\n%s", e.Value, e.Stack)
}

// SpeculationConfig enables speculative re-execution of straggling
// tasks, mirroring Spark's spark.speculation knobs. The scheduler
// tracks completed task durations per stage; once at least MinCompleted
// tasks have finished, any still-running task whose elapsed time
// exceeds Multiplier times the stage median gets a backup copy
// dispatched to an idle worker. First result wins, with a deterministic
// tie-break (the primary's result is kept when both have committed
// nothing yet and the primary arrives first under the tracker lock) —
// ops are pure functions of (broadcasts, partition), so either copy
// yields the same output and order-aware semantics are unchanged.
type SpeculationConfig struct {
	// Multiplier is the straggler bound as a multiple of the stage
	// median task duration. Default 1.5.
	Multiplier float64
	// MinCompleted is how many tasks must finish before speculation can
	// trigger (the median is meaningless earlier). Default 2.
	MinCompleted int
	// Poll is how often idle workers look for straggling tasks to back
	// up. Default 1ms.
	Poll time.Duration
}

// WithDefaults validates the config and fills in defaults. Executors
// (local and rpcexec) call it once at construction.
func (c *SpeculationConfig) WithDefaults() (SpeculationConfig, error) {
	out := *c
	if out.Multiplier < 0 {
		return out, fmt.Errorf("mbsp: speculation multiplier %v must not be negative", out.Multiplier)
	}
	if out.Multiplier == 0 {
		out.Multiplier = 1.5
	}
	if out.Multiplier < 1 {
		return out, fmt.Errorf("mbsp: speculation multiplier %v must be at least 1", out.Multiplier)
	}
	if out.MinCompleted < 0 {
		return out, fmt.Errorf("mbsp: speculation MinCompleted %d must not be negative", out.MinCompleted)
	}
	if out.MinCompleted == 0 {
		out.MinCompleted = 2
	}
	if out.Poll < 0 {
		return out, fmt.Errorf("mbsp: speculation poll %v must not be negative", out.Poll)
	}
	if out.Poll == 0 {
		out.Poll = time.Millisecond
	}
	return out, nil
}
