package mbsp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// DelayFunc injects artificial per-task latency; it receives the stage,
// task id and worker id and returns extra wall time to sleep before the
// task body runs. Used by the straggler experiments (§VII-D2) to model a
// contended cluster deterministically.
type DelayFunc func(stage string, taskID, workerID int) time.Duration

// FailFunc injects artificial task failures; it receives the stage, task
// id and attempt number and returns a non-nil error to make that attempt
// fail before the op body runs. Combined with TaskRetries it makes
// worker-crash recovery testable in-process: fail attempt 0, let the
// retry succeed, and assert the retry count in the task metrics.
type FailFunc func(stage string, taskID, attempt int) error

// LocalConfig configures a LocalExecutor.
type LocalConfig struct {
	// Parallelism is the number of worker goroutines (the paper's p).
	Parallelism int
	// Registry resolves op names. Required.
	Registry *Registry
	// Delay optionally injects straggler latency.
	Delay DelayFunc
	// Fail optionally injects task failures (see FailFunc).
	Fail FailFunc
	// TaskRetries re-runs a failed task up to this many additional times
	// before failing the stage — the engine-level analogue of Spark
	// Streaming's task re-execution, which the paper relies on for fault
	// tolerance (§VI). Default 0 (no retries).
	TaskRetries int
	// Speculation, when set, enables speculative re-execution of
	// straggling tasks: idle workers run backup copies of tasks that
	// exceed the configured multiple of the stage's median task duration,
	// and the first result wins.
	Speculation *SpeculationConfig
}

// LocalExecutor runs tasks on a pool of in-process worker goroutines. It
// is the executor used for all deterministic experiments; rpcexec provides
// the same semantics over TCP.
type LocalExecutor struct {
	cfg        LocalConfig
	broadcasts *mapStore

	mu     sync.Mutex
	closed bool
}

var (
	_ Executor        = (*LocalExecutor)(nil)
	_ Capable         = (*LocalExecutor)(nil)
	_ StageDispatcher = (*LocalExecutor)(nil)
)

// NewLocalExecutor validates cfg and returns an executor.
func NewLocalExecutor(cfg LocalConfig) (*LocalExecutor, error) {
	if cfg.Parallelism <= 0 {
		return nil, fmt.Errorf("mbsp: parallelism %d must be positive", cfg.Parallelism)
	}
	if cfg.Registry == nil {
		return nil, errors.New("mbsp: registry is required")
	}
	if cfg.Speculation != nil {
		validated, err := cfg.Speculation.WithDefaults()
		if err != nil {
			return nil, err
		}
		cfg.Speculation = &validated
	}
	return &LocalExecutor{cfg: cfg, broadcasts: newMapStore()}, nil
}

// Parallelism implements Executor.
func (e *LocalExecutor) Parallelism() int { return e.cfg.Parallelism }

// Broadcast implements Executor.
func (e *LocalExecutor) Broadcast(ctx context.Context, id string, value Item) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if id == "" {
		return errors.New("mbsp: empty broadcast id")
	}
	e.broadcasts.put(id, value)
	return nil
}

// RunTasks implements Executor. Tasks are dealt to workers round-robin
// (task i runs on worker i%p); outputs are returned in input order. The
// call blocks until every task finishes (a synchronous stage barrier,
// matching the paper's synchronous update protocol).
func (e *LocalExecutor) RunTasks(ctx context.Context, stage, op string, inputs []Partition) ([]Partition, []TaskMetrics, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, nil, ErrClosed
	}
	fn, err := e.cfg.Registry.Lookup(op)
	if err != nil {
		return nil, nil, err
	}
	if e.cfg.Speculation != nil {
		return e.runTasksSpeculative(ctx, stage, fn, inputs)
	}
	n := len(inputs)
	outputs := make([]Partition, n)
	metrics := make([]TaskMetrics, n)
	errs := make([]error, n)

	p := e.cfg.Parallelism
	// Spawn only as many workers as there are tasks. The stride stays p so
	// the task → worker assignment (task t runs on worker t%p) is
	// unchanged: when n <= p, t%p == t for every task, so workers n..p-1
	// would have had empty loops anyway.
	workers := p
	if n < workers {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := w; task < n; task += p {
				if ctx.Err() != nil {
					return
				}
				out, m, err := e.attemptTask(ctx, stage, fn, inputs, task, w)
				if err != nil {
					errs[task] = err
					continue
				}
				outputs[task] = out
				metrics[task] = m
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, metrics, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, metrics, err
		}
	}
	return outputs, metrics, nil
}

// attemptTask runs one copy of a task — injected delay, injected
// failures, the op body (with panic containment) and the retry loop —
// and returns its output, metrics and error. It is shared by the plain
// path (one copy per task) and the speculative path (primary + backup
// copies).
func (e *LocalExecutor) attemptTask(ctx context.Context, stage string, fn OpFunc, inputs []Partition, task, worker int) (Partition, TaskMetrics, error) {
	start := time.Now()
	if e.cfg.Delay != nil {
		if d := e.cfg.Delay(stage, task, worker); d > 0 {
			time.Sleep(d)
		}
	}
	tctx := &TaskContext{
		StageName:  stage,
		TaskID:     task,
		WorkerID:   worker,
		broadcasts: e.broadcasts,
	}
	var out Partition
	var err error
	for attempt := 0; ; attempt++ {
		tctx.Attempt = attempt
		if e.cfg.Fail != nil {
			err = e.cfg.Fail(stage, task, attempt)
		} else {
			err = nil
		}
		if err == nil {
			out, err = SafeCall(fn, tctx, inputs[task])
		}
		if err == nil || attempt >= e.cfg.TaskRetries || ctx.Err() != nil {
			break
		}
	}
	m := TaskMetrics{
		Stage:    stage,
		TaskID:   task,
		WorkerID: worker,
		Duration: time.Since(start),
		InItems:  len(inputs[task]),
		OutItems: len(out),
		Retries:  tctx.Attempt,
	}
	if err != nil {
		return nil, m, &TaskError{Stage: stage, TaskID: task, Err: err}
	}
	return out, m, nil
}

// specTracker is the shared scheduling state of one speculative stage.
// All fields are guarded by mu; results commit first-wins under the
// lock, which makes the tie-break deterministic in effect: ops are pure
// functions of (broadcasts, input partition), so whichever copy commits,
// the committed output is identical.
type specTracker struct {
	mu        sync.Mutex
	durations []time.Duration   // committed successful task durations
	starts    map[int]time.Time // start time of each running primary
	backups   map[int]bool      // tasks with a backup copy launched
	failed    map[int]bool      // speculated tasks with one failed copy
	committed []bool
	remaining int
	aborted   bool
	done      chan struct{} // closed when every task has committed
}

// candidate picks the straggler to back up: the lowest-id uncommitted
// task with no backup yet whose elapsed time exceeds the speculation
// bound. Marks it backed-up before returning. Caller holds mu.
func (st *specTracker) candidate(spec *SpeculationConfig) (int, bool) {
	if len(st.durations) < spec.MinCompleted {
		return 0, false
	}
	sorted := append([]time.Duration(nil), st.durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	bound := time.Duration(float64(median) * spec.Multiplier)
	best := -1
	for task, started := range st.starts {
		if st.backups[task] || st.committed[task] || time.Since(started) <= bound {
			continue
		}
		if best < 0 || task < best {
			best = task
		}
	}
	if best < 0 {
		return 0, false
	}
	st.backups[best] = true
	return best, true
}

// runTasksSpeculative is RunTasks with straggler mitigation: workers
// first drain their own static task queue (task i on worker i%p, as in
// the plain path), then poll for straggling tasks and run backup copies.
// The stage completes as soon as every task has a committed result —
// without waiting for straggling copies that already lost, which is
// where the wall-time win over the plain path comes from.
func (e *LocalExecutor) runTasksSpeculative(ctx context.Context, stage string, fn OpFunc, inputs []Partition) ([]Partition, []TaskMetrics, error) {
	n := len(inputs)
	outputs := make([]Partition, n)
	metrics := make([]TaskMetrics, n)
	errs := make([]error, n)
	spec := e.cfg.Speculation
	st := &specTracker{
		starts:    make(map[int]time.Time),
		backups:   make(map[int]bool),
		failed:    make(map[int]bool),
		committed: make([]bool, n),
		remaining: n,
		done:      make(chan struct{}),
	}
	if n == 0 {
		close(st.done)
	}

	commit := func(task int, out Partition, m TaskMetrics, err error, isBackup bool) {
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.aborted || st.committed[task] {
			return // the other copy won (or the stage aborted); discard
		}
		if err != nil && st.backups[task] && !st.failed[task] {
			// First failed copy of a speculated task: keep the task open so
			// the surviving copy can still deliver a good result.
			st.failed[task] = true
			return
		}
		st.committed[task] = true
		delete(st.starts, task)
		m.Speculative = st.backups[task]
		m.SpeculativeWin = isBackup && err == nil
		outputs[task], metrics[task], errs[task] = out, m, err
		if err == nil {
			st.durations = append(st.durations, m.Duration)
		}
		st.remaining--
		if st.remaining == 0 {
			close(st.done)
		}
	}

	p := e.cfg.Parallelism
	for w := 0; w < p; w++ {
		go func(w int) {
			for task := w; task < n; task += p {
				if ctx.Err() != nil {
					return
				}
				st.mu.Lock()
				if st.aborted {
					st.mu.Unlock()
					return
				}
				st.starts[task] = time.Now()
				st.mu.Unlock()
				out, m, err := e.attemptTask(ctx, stage, fn, inputs, task, w)
				commit(task, out, m, err, false)
			}
			// Queue drained: this worker is idle. Poll for stragglers.
			ticker := time.NewTicker(spec.Poll)
			defer ticker.Stop()
			for {
				select {
				case <-st.done:
					return
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				st.mu.Lock()
				task, ok := st.candidate(spec)
				st.mu.Unlock()
				if !ok {
					continue
				}
				out, m, err := e.attemptTask(ctx, stage, fn, inputs, task, w)
				commit(task, out, m, err, true)
			}
		}(w)
	}

	select {
	case <-st.done:
		// Closed under st.mu after the last commit: all slice writes are
		// visible here, and no goroutine writes after its discard check.
	case <-ctx.Done():
		st.mu.Lock()
		st.aborted = true // poison: in-flight copies discard their results
		st.mu.Unlock()
		return nil, metrics, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, metrics, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, metrics, err
		}
	}
	return outputs, metrics, nil
}

// Capabilities implements Capable: the in-process executor streams task
// completions natively but has no use for broadcast deltas (workers read
// the driver's store directly).
func (e *LocalExecutor) Capabilities() Capabilities {
	return Capabilities{AsyncDispatch: true}
}

// DispatchStage implements StageDispatcher. In-process there is no wire
// to pipeline, so the fused broadcast is one store write; the value of
// the native path is the streamed OnTaskDone callbacks, which fire from
// the worker goroutines as each task commits instead of after the stage
// barrier. Under speculation the stage falls back to the speculative
// barrier path (duplicate copies make streamed exactly-once callbacks
// ambiguous) with callbacks replayed afterwards in task order.
func (e *LocalExecutor) DispatchStage(ctx context.Context, spec StageSpec) ([]Partition, []TaskMetrics, error) {
	if spec.BroadcastID != "" {
		if err := e.Broadcast(ctx, spec.BroadcastID, spec.BroadcastValue); err != nil {
			return nil, nil, &BroadcastError{ID: spec.BroadcastID, Err: err}
		}
	}
	if e.cfg.Speculation != nil || spec.OnTaskDone == nil {
		outputs, metrics, err := e.RunTasks(ctx, spec.Stage, spec.Op, spec.Inputs)
		if err != nil {
			return nil, metrics, err
		}
		if spec.OnTaskDone != nil {
			for task, out := range outputs {
				spec.OnTaskDone(task, out)
			}
		}
		return outputs, metrics, nil
	}

	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, nil, ErrClosed
	}
	fn, err := e.cfg.Registry.Lookup(spec.Op)
	if err != nil {
		return nil, nil, err
	}
	n := len(spec.Inputs)
	outputs := make([]Partition, n)
	metrics := make([]TaskMetrics, n)
	errs := make([]error, n)

	p := e.cfg.Parallelism
	workers := p
	if n < workers {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := w; task < n; task += p {
				if ctx.Err() != nil {
					return
				}
				out, m, err := e.attemptTask(ctx, spec.Stage, fn, spec.Inputs, task, w)
				if err != nil {
					errs[task] = err
					continue
				}
				outputs[task] = out
				metrics[task] = m
				spec.OnTaskDone(task, out)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, metrics, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, metrics, err
		}
	}
	return outputs, metrics, nil
}

// Close implements Executor.
func (e *LocalExecutor) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// NewStragglerDelay returns a DelayFunc modelling cluster contention: each
// task independently becomes a straggler with probability prob, sleeping
// an extra duration uniform in [minDelay, maxDelay). The function is
// deterministic for a given seed and (stage, task) pair, so repeated runs
// hit the same stragglers.
func NewStragglerDelay(seed int64, prob float64, minDelay, maxDelay time.Duration) DelayFunc {
	return func(stage string, taskID, _ int) time.Duration {
		// Derive a per-(stage,task) stream so scheduling order cannot
		// change which tasks straggle. FNV-1a over stage name + task id.
		h := uint64(14695981039346656037)
		for _, b := range []byte(stage) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		h = (h ^ uint64(taskID)) * 1099511628211
		rng := rand.New(rand.NewSource(seed ^ int64(h)))
		if rng.Float64() >= prob {
			return 0
		}
		span := maxDelay - minDelay
		if span <= 0 {
			return minDelay
		}
		return minDelay + time.Duration(rng.Int63n(int64(span)))
	}
}
