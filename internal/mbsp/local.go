package mbsp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// DelayFunc injects artificial per-task latency; it receives the stage,
// task id and worker id and returns extra wall time to sleep before the
// task body runs. Used by the straggler experiments (§VII-D2) to model a
// contended cluster deterministically.
type DelayFunc func(stage string, taskID, workerID int) time.Duration

// FailFunc injects artificial task failures; it receives the stage, task
// id and attempt number and returns a non-nil error to make that attempt
// fail before the op body runs. Combined with TaskRetries it makes
// worker-crash recovery testable in-process: fail attempt 0, let the
// retry succeed, and assert the retry count in the task metrics.
type FailFunc func(stage string, taskID, attempt int) error

// LocalConfig configures a LocalExecutor.
type LocalConfig struct {
	// Parallelism is the number of worker goroutines (the paper's p).
	Parallelism int
	// Registry resolves op names. Required.
	Registry *Registry
	// Delay optionally injects straggler latency.
	Delay DelayFunc
	// Fail optionally injects task failures (see FailFunc).
	Fail FailFunc
	// TaskRetries re-runs a failed task up to this many additional times
	// before failing the stage — the engine-level analogue of Spark
	// Streaming's task re-execution, which the paper relies on for fault
	// tolerance (§VI). Default 0 (no retries).
	TaskRetries int
}

// LocalExecutor runs tasks on a pool of in-process worker goroutines. It
// is the executor used for all deterministic experiments; rpcexec provides
// the same semantics over TCP.
type LocalExecutor struct {
	cfg        LocalConfig
	broadcasts *mapStore

	mu     sync.Mutex
	closed bool
}

var _ Executor = (*LocalExecutor)(nil)

// NewLocalExecutor validates cfg and returns an executor.
func NewLocalExecutor(cfg LocalConfig) (*LocalExecutor, error) {
	if cfg.Parallelism <= 0 {
		return nil, fmt.Errorf("mbsp: parallelism %d must be positive", cfg.Parallelism)
	}
	if cfg.Registry == nil {
		return nil, errors.New("mbsp: registry is required")
	}
	return &LocalExecutor{cfg: cfg, broadcasts: newMapStore()}, nil
}

// Parallelism implements Executor.
func (e *LocalExecutor) Parallelism() int { return e.cfg.Parallelism }

// Broadcast implements Executor.
func (e *LocalExecutor) Broadcast(ctx context.Context, id string, value Item) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if id == "" {
		return errors.New("mbsp: empty broadcast id")
	}
	e.broadcasts.put(id, value)
	return nil
}

// RunTasks implements Executor. Tasks are dealt to workers round-robin
// (task i runs on worker i%p); outputs are returned in input order. The
// call blocks until every task finishes (a synchronous stage barrier,
// matching the paper's synchronous update protocol).
func (e *LocalExecutor) RunTasks(ctx context.Context, stage, op string, inputs []Partition) ([]Partition, []TaskMetrics, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, nil, ErrClosed
	}
	fn, err := e.cfg.Registry.Lookup(op)
	if err != nil {
		return nil, nil, err
	}
	n := len(inputs)
	outputs := make([]Partition, n)
	metrics := make([]TaskMetrics, n)
	errs := make([]error, n)

	p := e.cfg.Parallelism
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := w; task < n; task += p {
				if ctx.Err() != nil {
					return
				}
				start := time.Now()
				if e.cfg.Delay != nil {
					if d := e.cfg.Delay(stage, task, w); d > 0 {
						time.Sleep(d)
					}
				}
				tctx := &TaskContext{
					StageName:  stage,
					TaskID:     task,
					WorkerID:   w,
					broadcasts: e.broadcasts,
				}
				var out Partition
				var err error
				for attempt := 0; ; attempt++ {
					tctx.Attempt = attempt
					if e.cfg.Fail != nil {
						err = e.cfg.Fail(stage, task, attempt)
					} else {
						err = nil
					}
					if err == nil {
						out, err = fn(tctx, inputs[task])
					}
					if err == nil || attempt >= e.cfg.TaskRetries || ctx.Err() != nil {
						break
					}
				}
				if err != nil {
					errs[task] = &TaskError{Stage: stage, TaskID: task, Err: err}
					continue
				}
				outputs[task] = out
				metrics[task] = TaskMetrics{
					Stage:    stage,
					TaskID:   task,
					WorkerID: w,
					Duration: time.Since(start),
					InItems:  len(inputs[task]),
					OutItems: len(out),
					Retries:  tctx.Attempt,
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, metrics, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, metrics, err
		}
	}
	return outputs, metrics, nil
}

// Close implements Executor.
func (e *LocalExecutor) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// NewStragglerDelay returns a DelayFunc modelling cluster contention: each
// task independently becomes a straggler with probability prob, sleeping
// an extra duration uniform in [minDelay, maxDelay). The function is
// deterministic for a given seed and (stage, task) pair, so repeated runs
// hit the same stragglers.
func NewStragglerDelay(seed int64, prob float64, minDelay, maxDelay time.Duration) DelayFunc {
	return func(stage string, taskID, _ int) time.Duration {
		// Derive a per-(stage,task) stream so scheduling order cannot
		// change which tasks straggle. FNV-1a over stage name + task id.
		h := uint64(14695981039346656037)
		for _, b := range []byte(stage) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		h = (h ^ uint64(taskID)) * 1099511628211
		rng := rand.New(rand.NewSource(seed ^ int64(h)))
		if rng.Float64() >= prob {
			return 0
		}
		span := maxDelay - minDelay
		if span <= 0 {
			return minDelay
		}
		return minDelay + time.Duration(rng.Int63n(int64(span)))
	}
}
