package mbsp

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"
)

// Engine is the driver: it runs stages on an Executor, performs the
// shuffle between stages, and accumulates stage metrics. An Engine is not
// safe for concurrent use; the DistStream pipeline drives it from a
// single batch loop, exactly like a Spark Streaming driver.
type Engine struct {
	exec    Executor
	metrics []StageMetrics
}

// NewEngine wraps an executor.
func NewEngine(exec Executor) (*Engine, error) {
	if exec == nil {
		return nil, errors.New("mbsp: nil executor")
	}
	return &Engine{exec: exec}, nil
}

// Parallelism returns the executor's worker count.
func (e *Engine) Parallelism() int { return e.exec.Parallelism() }

// AliveWorkers returns how many workers are still serving tasks, for
// executors that track losses (the TCP executor); others report full
// strength.
func (e *Engine) AliveWorkers() int {
	if a, ok := e.exec.(interface{ AliveWorkers() int }); ok {
		return a.AliveWorkers()
	}
	return e.exec.Parallelism()
}

// Broadcast publishes a value to all workers under id.
func (e *Engine) Broadcast(ctx context.Context, id string, v Item) error {
	return e.exec.Broadcast(ctx, id, v)
}

// BroadcastDelta publishes full under id, offering delta as a cheap
// update for workers that already hold the previous version. Executors
// without the DeltaBroadcaster capability (or with a nil delta) receive
// the full value through the plain Broadcast path, so callers may invoke
// this unconditionally.
func (e *Engine) BroadcastDelta(ctx context.Context, id string, full, delta Item) error {
	if delta != nil {
		if db, ok := e.exec.(DeltaBroadcaster); ok && db.DeltaBroadcastEnabled() {
			return db.BroadcastDelta(ctx, id, full, delta)
		}
	}
	return e.exec.Broadcast(ctx, id, full)
}

// Capabilities reports the executor's optional capabilities. Executors
// implementing Capable answer for themselves; for legacy executors the
// engine falls back to the DeltaBroadcaster type-assert and assumes no
// async dispatch.
func (e *Engine) Capabilities() Capabilities {
	if c, ok := e.exec.(Capable); ok {
		return c.Capabilities()
	}
	db, ok := e.exec.(DeltaBroadcaster)
	return Capabilities{DeltaBroadcast: ok && db.DeltaBroadcastEnabled()}
}

// SupportsDeltaBroadcast reports whether the executor ships broadcast
// deltas, so callers can skip computing one when it would be discarded.
//
// Deprecated: use Capabilities().DeltaBroadcast.
func (e *Engine) SupportsDeltaBroadcast() bool {
	return e.Capabilities().DeltaBroadcast
}

// ReconcileMembership applies pending worker-set changes on executors
// with the ElasticMembership capability and reports what changed; for
// every other executor it is a no-op. Callers must invoke it only
// between batches (the executor swaps connections without stage-path
// locking at this quiescent point).
func (e *Engine) ReconcileMembership(ctx context.Context) (MembershipDelta, error) {
	if r, ok := e.exec.(MembershipReconciler); ok && e.Capabilities().ElasticMembership {
		return r.ReconcileMembership(ctx)
	}
	return MembershipDelta{}, nil
}

// DispatchStage runs one StageSpec — a parallel map optionally fused with
// a broadcast and streaming per-task completions — recording stage
// metrics exactly like MapStage. Executors with the AsyncDispatch
// capability run it natively (broadcast frames pipelined with first
// tasks, callbacks as outputs arrive); for the rest the engine emulates
// it as broadcast-then-RunTasks with the callbacks fired afterwards in
// task order, which is semantically identical, only without the overlap.
func (e *Engine) DispatchStage(ctx context.Context, spec StageSpec) ([]Partition, error) {
	start := time.Now()
	outputs, taskMetrics, err := e.dispatchStage(ctx, spec)
	e.metrics = append(e.metrics, StageMetrics{
		Stage:  spec.Stage,
		Tasks:  taskMetrics,
		Wall:   time.Since(start),
		Failed: err != nil,
	})
	if err != nil {
		return nil, err
	}
	return outputs, nil
}

func (e *Engine) dispatchStage(ctx context.Context, spec StageSpec) ([]Partition, []TaskMetrics, error) {
	if d, ok := e.exec.(StageDispatcher); ok {
		if c, ok := e.exec.(Capable); ok && c.Capabilities().AsyncDispatch {
			return d.DispatchStage(ctx, spec)
		}
	}
	// Emulation: publish the broadcast through the ordinary path, run the
	// stage with the ordinary barrier, then replay the completion
	// callbacks in task order.
	if spec.BroadcastID != "" {
		var err error
		if spec.BroadcastDelta != nil {
			if db, ok := e.exec.(DeltaBroadcaster); ok && db.DeltaBroadcastEnabled() {
				err = db.BroadcastDelta(ctx, spec.BroadcastID, spec.BroadcastValue, spec.BroadcastDelta)
			} else {
				err = e.exec.Broadcast(ctx, spec.BroadcastID, spec.BroadcastValue)
			}
		} else {
			err = e.exec.Broadcast(ctx, spec.BroadcastID, spec.BroadcastValue)
		}
		if err != nil {
			return nil, nil, &BroadcastError{ID: spec.BroadcastID, Err: err}
		}
	}
	outputs, taskMetrics, err := e.exec.RunTasks(ctx, spec.Stage, spec.Op, spec.Inputs)
	if err != nil {
		return nil, taskMetrics, err
	}
	if spec.OnTaskDone != nil {
		for task, out := range outputs {
			spec.OnTaskDone(task, out)
		}
	}
	return outputs, taskMetrics, nil
}

// MapStage runs the named op over every input partition in parallel and
// returns the per-partition outputs, recording stage metrics. A failed
// stage still appends its metrics, marked Failed, so callers can account
// for partial work and retries before the error surfaced.
func (e *Engine) MapStage(ctx context.Context, stage, op string, inputs []Partition) ([]Partition, error) {
	start := time.Now()
	outputs, taskMetrics, err := e.exec.RunTasks(ctx, stage, op, inputs)
	e.metrics = append(e.metrics, StageMetrics{
		Stage:  stage,
		Tasks:  taskMetrics,
		Wall:   time.Since(start),
		Failed: err != nil,
	})
	if err != nil {
		return nil, err
	}
	return outputs, nil
}

// ShuffleByKey regroups partitions of KeyedItem into numPartitions
// partitions of Group. Keys are routed with key % numPartitions; within a
// group, items keep emission order (source partition first, then
// position), which the order-aware local update then refines by record
// timestamp. Items that are not KeyedItem are rejected.
//
// The shuffle executes on the driver: with in-process workers the data is
// already in shared memory, and with the TCP executor task outputs have
// been collected anyway — semantically identical to (if less scalable
// than) Spark's distributed shuffle, which is acceptable because shuffle
// volume here is one (key, record) pair per input record.
func ShuffleByKey(inputs []Partition, numPartitions int) ([]Partition, error) {
	b := NewShuffleBuilder()
	for pi, part := range inputs {
		b.Count(pi, part)
	}
	return b.Finalize(inputs, numPartitions)
}

// ShuffleBuilder is the shuffle's counting pass made incremental, so a
// dispatched stage can absorb task outputs as they stream in (counting is
// commutative) and pay only the deterministic fill pass after the stage
// barrier. Count is safe for concurrent use; Finalize is not, and must
// run after every Count has returned. ShuffleByKey is exactly
// NewShuffleBuilder + one Count per partition + Finalize, so the two
// paths cannot diverge.
type ShuffleBuilder struct {
	mu    sync.Mutex
	slot  map[uint64]int // key -> count (counting), then -> group index (fill)
	total int
	err   error
}

// NewShuffleBuilder returns an empty builder.
func NewShuffleBuilder() *ShuffleBuilder {
	return &ShuffleBuilder{slot: make(map[uint64]int)}
}

// Count absorbs one source partition's keyed items into the per-key
// counts. partition is the partition's index, used only for error
// reporting. Each partition must be counted exactly once.
func (b *ShuffleBuilder) Count(partition int, part Partition) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ii, item := range part {
		key, _, ok := keyedOf(item)
		if !ok {
			if b.err == nil {
				b.err = fmt.Errorf("mbsp: shuffle input partition %d item %d is %T, want KeyedItem", partition, ii, item)
			}
			return
		}
		b.slot[key]++
		b.total++
	}
}

// Finalize runs the fill pass over inputs — which must be the same
// partitions passed to Count, in partition order — and returns the
// grouped shuffle output. Within a group, items keep emission order
// (source partition first, then position); groups route to partitions by
// key % numPartitions with a sorted, deterministic group order.
func (b *ShuffleBuilder) Finalize(inputs []Partition, numPartitions int) ([]Partition, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("mbsp: numPartitions %d must be positive", numPartitions)
	}
	if b.err != nil {
		return nil, b.err
	}
	keys := make([]uint64, 0, len(b.slot))
	for key := range b.slot {
		keys = append(keys, key)
	}
	// Deterministic routing and a deterministic group order inside each
	// partition: sort keys, route by modulo.
	slices.Sort(keys)
	backing := make([]any, b.total)
	groups := make([]Group, len(keys))
	off := 0
	for i, key := range keys {
		n := b.slot[key]
		// Length 0, capacity exactly n: appends in the fill pass land in
		// place and cannot spill into the next group's slot.
		groups[i] = Group{Key: key, Items: backing[off:off:off+n]}
		b.slot[key] = i
		off += n
	}
	// Fill in emission order (source partition first, then position),
	// exactly the order the map-based shuffle appended in.
	for _, part := range inputs {
		for _, item := range part {
			key, v, _ := keyedOf(item)
			g := &groups[b.slot[key]]
			g.Items = append(g.Items, v)
		}
	}
	out := make([]Partition, numPartitions)
	for i := range groups {
		p := int(groups[i].Key % uint64(numPartitions))
		out[p] = append(out[p], groups[i])
	}
	return out, nil
}

// keyedOf extracts the shuffle key and payload from an item, accepting
// both the KeyedItem value form and the *KeyedItem pointer form the
// assign stage emits to avoid per-record interface boxing.
func keyedOf(item any) (uint64, any, bool) {
	switch ki := item.(type) {
	case KeyedItem:
		return ki.Key, ki.Item, true
	case *KeyedItem:
		return ki.Key, ki.Item, true
	}
	return 0, nil, false
}

// Collect concatenates all partitions into one slice at the driver, in
// partition order.
func Collect(parts []Partition) Partition {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make(Partition, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// RoundRobin deals items into p partitions preserving arrival order
// within each partition: item i goes to partition i%p. This is the
// record-distribution strategy of the assign step (§V-A: "assign incoming
// records with different timestamps into different tasks in a round-robin
// way").
func RoundRobin(items []Item, p int) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mbsp: partitions %d must be positive", p)
	}
	out := make([]Partition, p)
	per := (len(items) + p - 1) / p
	for i := range out {
		out[i] = make(Partition, 0, per)
	}
	for i, item := range items {
		out[i%p] = append(out[i%p], item)
	}
	return out, nil
}

// Chunk splits items into p contiguous ranges (range partitioning); used
// by the ablation that compares against model-based parallelism for the
// assign step.
func Chunk(items []Item, p int) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mbsp: partitions %d must be positive", p)
	}
	out := make([]Partition, p)
	n := len(items)
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		out[i] = append(Partition(nil), items[lo:hi]...)
	}
	return out, nil
}

// Metrics returns the stage metrics accumulated since the last Reset, in
// execution order. The returned slice is a copy.
func (e *Engine) Metrics() []StageMetrics {
	out := make([]StageMetrics, len(e.metrics))
	copy(out, e.metrics)
	return out
}

// ResetMetrics clears accumulated metrics.
func (e *Engine) ResetMetrics() { e.metrics = e.metrics[:0] }

// Close closes the underlying executor.
func (e *Engine) Close() error { return e.exec.Close() }
