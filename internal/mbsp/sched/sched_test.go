package sched

import (
	"context"
	"strings"
	"testing"

	"diststream/internal/mbsp"
)

// newSchedRegistry registers a toy assign/local pair exercising both
// broadcasts: assign shifts each record by the "model" broadcast and keys
// it, local-update scales each grouped record by the "config" broadcast.
func newSchedRegistry(t *testing.T) *mbsp.Registry {
	t.Helper()
	reg := mbsp.NewRegistry()
	reg.MustRegister("toy-assign", func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		bv, err := ctx.Broadcast("model")
		if err != nil {
			return nil, err
		}
		off := bv.(int)
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			v := item.(int) + off
			out[i] = mbsp.KeyedItem{Key: uint64(v % 5), Item: v}
		}
		return out, nil
	})
	reg.MustRegister("toy-local", func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		bv, err := ctx.Broadcast("config")
		if err != nil {
			return nil, err
		}
		scale := bv.(int)
		var out mbsp.Partition
		for _, item := range in {
			g := item.(mbsp.Group)
			for _, v := range g.Items {
				out = append(out, v.(int)*scale)
			}
		}
		return out, nil
	})
	reg.MustRegister("unkeyed", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		return in, nil
	})
	return reg
}

func newSchedEngine(t *testing.T, p int) *mbsp.Engine {
	t.Helper()
	exec, err := mbsp.NewLocalExecutor(mbsp.LocalConfig{Parallelism: p, Registry: newSchedRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func toyJob(withConfig bool) *Job {
	inputs := make([]mbsp.Partition, 4)
	for i := 0; i < 40; i++ {
		inputs[i%4] = append(inputs[i%4], i*7)
	}
	job := &Job{
		ModelID:    "model",
		Model:      3,
		AssignOp:   "toy-assign",
		LocalOp:    "toy-local",
		Inputs:     inputs,
		Partitions: 4,
	}
	if withConfig {
		job.ConfigID = "config"
		job.Config = 10
	}
	return job
}

func TestNew(t *testing.T) {
	cases := []struct {
		kind       Kind
		want       Kind
		overlapped bool
	}{
		{"", BSP, false},
		{BSP, BSP, false},
		{Pipelined, Pipelined, true},
	}
	for _, c := range cases {
		s, err := New(c.kind)
		if err != nil {
			t.Fatalf("New(%q): %v", c.kind, err)
		}
		if s.Kind() != c.want {
			t.Errorf("New(%q).Kind() = %q, want %q", c.kind, s.Kind(), c.want)
		}
		if s.Overlapped() != c.overlapped {
			t.Errorf("New(%q).Overlapped() = %v, want %v", c.kind, s.Overlapped(), c.overlapped)
		}
	}
	if _, err := New("speculative"); err == nil ||
		!strings.Contains(err.Error(), `unknown schedule "speculative"`) {
		t.Errorf("New(speculative) err = %v, want unknown-schedule error", err)
	}
	if kinds := Kinds(); len(kinds) != 2 || kinds[0] != BSP || kinds[1] != Pipelined {
		t.Errorf("Kinds() = %v", kinds)
	}
}

// TestSchedulesEquivalent runs the same two batches under each schedule
// and requires identical collected updates in identical order — the
// contract that lets core.Pipeline treat schedules as interchangeable.
// The second batch ships no config, so it also proves the once-per-run
// config broadcast persists on workers across batches.
func TestSchedulesEquivalent(t *testing.T) {
	ctx := context.Background()
	results := map[Kind][]mbsp.Partition{}
	for _, kind := range Kinds() {
		s, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		eng := newSchedEngine(t, 4)
		for _, withConfig := range []bool{true, false} {
			res, err := s.RunBatch(ctx, eng, toyJob(withConfig))
			if err != nil {
				t.Fatalf("%s: RunBatch: %v", kind, err)
			}
			results[kind] = append(results[kind], res.Updates)
		}
	}
	bsp, pip := results[BSP], results[Pipelined]
	for b := range bsp {
		if len(bsp[b]) != 40 {
			t.Fatalf("batch %d: bsp produced %d updates, want 40", b, len(bsp[b]))
		}
		if len(pip[b]) != len(bsp[b]) {
			t.Fatalf("batch %d: pipelined produced %d updates, bsp %d", b, len(pip[b]), len(bsp[b]))
		}
		for i := range bsp[b] {
			if bsp[b][i] != pip[b][i] {
				t.Errorf("batch %d update %d: bsp %v, pipelined %v", b, i, bsp[b][i], pip[b][i])
			}
		}
	}
}

// TestErrorPrefixes pins the phase prefixes core.Pipeline's error
// messages depend on, for both schedules.
func TestErrorPrefixes(t *testing.T) {
	ctx := context.Background()
	for _, kind := range Kinds() {
		s, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(string(kind), func(t *testing.T) {
			job := toyJob(true)
			job.AssignOp = "no-such-op"
			eng := newSchedEngine(t, 2)
			if _, err := s.RunBatch(ctx, eng, job); err == nil ||
				!strings.Contains(err.Error(), "assign stage:") {
				t.Errorf("assign error = %v, want assign stage prefix", err)
			}

			job = toyJob(true)
			job.AssignOp = "unkeyed" // emits plain ints: the shuffle must reject them
			eng = newSchedEngine(t, 2)
			if _, err := s.RunBatch(ctx, eng, job); err == nil ||
				!strings.Contains(err.Error(), "shuffle:") {
				t.Errorf("shuffle error = %v, want shuffle prefix", err)
			}

			job = toyJob(true)
			job.LocalOp = "no-such-op"
			eng = newSchedEngine(t, 2)
			if _, err := s.RunBatch(ctx, eng, job); err == nil ||
				!strings.Contains(err.Error(), "local-update stage:") {
				t.Errorf("local-update error = %v, want local-update stage prefix", err)
			}
		})
	}
}
