package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"diststream/internal/mbsp"
)

// pipelinedSchedule keeps the BSP stage DAG but strips the barriers the
// data dependencies do not require:
//
//   - The model broadcast is fused into assign dispatch (StageSpec with a
//     broadcast), so each worker receives its broadcast frame pipelined
//     with its first task frame instead of the driver paying a full
//     broadcast barrier plus a round trip before any task ships.
//   - Task inputs are columnar-encoded lazily on the per-worker dispatch
//     goroutines instead of serially on the driver before dispatch.
//   - The shuffle's counting pass runs incrementally over assign outputs
//     as tasks complete (counting is commutative); only the deterministic
//     fill pass — which fixes within-group emission order — waits for the
//     assign barrier, so the grouped output is bit-identical to
//     ShuffleByKey's.
//
// What it deliberately does NOT do is assign batch N+1 against anything
// but the model produced by batch N's global update (the version-pinning
// rule): re-routing records against a stale model version would change
// record→micro-cluster assignment and break byte-equality with BSP. On
// executors without the AsyncDispatch capability every DispatchStage
// degrades to the engine's broadcast-then-barrier emulation, making the
// schedule safe (if winless) everywhere.
type pipelinedSchedule struct{}

// Kind implements Schedule.
func (pipelinedSchedule) Kind() Kind { return Pipelined }

// Overlapped implements Schedule: core.Pipeline may overlap this
// schedule's batches with the previous batch's publish/checkpoint tail
// and the next batch's prefetch.
func (pipelinedSchedule) Overlapped() bool { return true }

// RunBatch implements Schedule.
func (pipelinedSchedule) RunBatch(ctx context.Context, eng *mbsp.Engine, job *Job) (*Result, error) {
	// The config broadcast happens once per run, before the first batch's
	// fused dispatch, so workers always hold it before their first task.
	if job.Config != nil {
		if err := eng.Broadcast(ctx, job.ConfigID, job.Config); err != nil {
			return nil, fmt.Errorf("broadcast config: %w", err)
		}
	}
	res := &Result{}
	sb := mbsp.NewShuffleBuilder()

	assignStart := time.Now()
	keyed, err := eng.DispatchStage(ctx, mbsp.StageSpec{
		Stage:          "assign",
		Op:             job.AssignOp,
		Inputs:         job.Inputs,
		BroadcastID:    job.ModelID,
		BroadcastValue: job.Model,
		BroadcastDelta: job.ModelDelta,
		// Stream each completed assign output into the shuffle's counting
		// pass while other tasks are still in flight.
		OnTaskDone: func(task int, out mbsp.Partition) { sb.Count(task, out) },
	})
	if err != nil {
		var be *mbsp.BroadcastError
		if errors.As(err, &be) {
			return nil, fmt.Errorf("broadcast model: %w", be.Err)
		}
		return nil, fmt.Errorf("assign stage: %w", err)
	}
	res.AssignWall = time.Since(assignStart)

	// Counting already happened; only the deterministic fill pass (and
	// group routing) remains on the driver.
	shuffleStart := time.Now()
	grouped, err := sb.Finalize(keyed, job.Partitions)
	if err != nil {
		return nil, fmt.Errorf("shuffle: %w", err)
	}
	res.ShuffleWall = time.Since(shuffleStart)

	localStart := time.Now()
	updateParts, err := eng.DispatchStage(ctx, mbsp.StageSpec{
		Stage:  "local-update",
		Op:     job.LocalOp,
		Inputs: grouped,
	})
	if err != nil {
		return nil, fmt.Errorf("local-update stage: %w", err)
	}
	res.LocalWall = time.Since(localStart)

	res.Updates = mbsp.Collect(updateParts)
	return res, nil
}
