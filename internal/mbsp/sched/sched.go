// Package sched makes the batch execution schedule a first-class,
// swappable strategy. A Schedule runs the parallel portion of one
// mini-batch — model broadcast, record-parallel assign, shuffle by
// micro-cluster key, model-parallel local update — over an mbsp engine
// and returns the collected updates for the driver's global step. The
// global step itself is serial by default but not inherently so: with
// core.Config.GlobalShards set and an algorithm exposing
// core.ShardedGlobalUpdater, the driver runs it as parallel per-shard
// reducers plus a serialized residue, byte-identical to the serial path.
//
// Two strategies ship:
//
//   - BSP is the paper's strict bulk-synchronous schedule: broadcast
//     barrier, assign barrier, driver-side shuffle, local-update barrier.
//     It is bit-identical to the historical inlined batch loop.
//   - Pipelined keeps the same stage DAG but removes every barrier the
//     data dependencies do not require: the broadcast is fused into task
//     delivery (each worker's broadcast frame and first assign task ship
//     back-to-back), task inputs encode lazily on the dispatch
//     goroutines, and the shuffle's counting pass streams over assign
//     outputs as tasks complete. Assignment always runs against the
//     pinned model version produced by the previous batch's global
//     update — the version-pinning rule — so final model state stays
//     byte-equal to BSP's.
//
// The driver-side overlap of batch N's publish/checkpoint tail with
// batch N+1's broadcast+assign lives in core.Pipeline, gated on
// Schedule.Overlapped.
package sched

import (
	"context"
	"fmt"
	"time"

	"diststream/internal/mbsp"
)

// Kind names a schedule strategy.
type Kind string

// Shipped schedule kinds.
const (
	// BSP is the strict bulk-synchronous schedule (the default).
	BSP Kind = "bsp"
	// Pipelined overlaps broadcast, task delivery and shuffle counting,
	// and unlocks the driver-side batch overlap in core.Pipeline.
	Pipelined Kind = "pipelined"
)

// Job is everything a schedule needs to run one batch's parallel stages.
type Job struct {
	// ModelID/Model/ModelDelta describe the per-batch model broadcast.
	// ModelDelta, when non-nil, is offered to workers holding the previous
	// version; the full Model is the universal fallback.
	ModelID    string
	Model      mbsp.Item
	ModelDelta mbsp.Item
	// ConfigID/Config describe the once-per-run task config broadcast.
	// Config is nil when it has already been delivered.
	ConfigID string
	Config   mbsp.Item
	// AssignOp and LocalOp are the registered op names of the two
	// parallel stages.
	AssignOp string
	LocalOp  string
	// Inputs are the record partitions for the assign stage.
	Inputs []mbsp.Partition
	// Partitions is the shuffle fan-out (normally the parallelism degree).
	Partitions int
}

// Result is the outcome of one scheduled batch.
type Result struct {
	// Updates are the collected local-update outputs in partition order,
	// ready for the driver's order-aware sort and global update.
	Updates mbsp.Partition
	// Per-stage wall times, as observed by the schedule. Under the
	// pipelined schedule the assign wall includes the fused broadcast.
	AssignWall, ShuffleWall, LocalWall time.Duration
}

// Schedule runs the parallel stages of mini-batches over an engine.
// Implementations are driven from a single batch loop and need not be
// safe for concurrent use.
type Schedule interface {
	// Kind returns the strategy name.
	Kind() Kind
	// Overlapped reports whether the driver may overlap this schedule's
	// batch execution with the previous batch's publish/checkpoint tail
	// and the next batch's prefetch (core.Pipeline honors it).
	Overlapped() bool
	// RunBatch executes one batch's broadcast, assign, shuffle and local
	// update, returning the collected updates. Errors are prefixed with
	// the failing phase ("broadcast model", "assign stage", "shuffle",
	// "local-update stage") for the driver to wrap.
	RunBatch(ctx context.Context, eng *mbsp.Engine, job *Job) (*Result, error)
}

// New returns the schedule implementing kind. An empty kind selects BSP.
func New(kind Kind) (Schedule, error) {
	switch kind {
	case "", BSP:
		return bspSchedule{}, nil
	case Pipelined:
		return pipelinedSchedule{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown schedule %q (want %q or %q)", kind, BSP, Pipelined)
	}
}

// Kinds lists the shipped schedule kinds, for flag help text.
func Kinds() []Kind { return []Kind{BSP, Pipelined} }
