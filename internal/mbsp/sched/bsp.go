package sched

import (
	"context"
	"fmt"
	"time"

	"diststream/internal/mbsp"
)

// bspSchedule is the strict bulk-synchronous schedule: every stage is a
// full barrier, exactly the control flow core.Pipeline used to inline.
// It exists both as the default strategy and as the reference the
// pipelined schedule is equivalence-tested against.
type bspSchedule struct{}

// Kind implements Schedule.
func (bspSchedule) Kind() Kind { return BSP }

// Overlapped implements Schedule.
func (bspSchedule) Overlapped() bool { return false }

// RunBatch implements Schedule with the historical barrier sequence:
// broadcast model (delta-aware), broadcast config once, assign barrier,
// driver-side shuffle, local-update barrier, collect.
func (bspSchedule) RunBatch(ctx context.Context, eng *mbsp.Engine, job *Job) (*Result, error) {
	if err := eng.BroadcastDelta(ctx, job.ModelID, job.Model, job.ModelDelta); err != nil {
		return nil, fmt.Errorf("broadcast model: %w", err)
	}
	if job.Config != nil {
		if err := eng.Broadcast(ctx, job.ConfigID, job.Config); err != nil {
			return nil, fmt.Errorf("broadcast config: %w", err)
		}
	}
	res := &Result{}

	assignStart := time.Now()
	keyed, err := eng.MapStage(ctx, "assign", job.AssignOp, job.Inputs)
	if err != nil {
		return nil, fmt.Errorf("assign stage: %w", err)
	}
	res.AssignWall = time.Since(assignStart)

	shuffleStart := time.Now()
	grouped, err := mbsp.ShuffleByKey(keyed, job.Partitions)
	if err != nil {
		return nil, fmt.Errorf("shuffle: %w", err)
	}
	res.ShuffleWall = time.Since(shuffleStart)

	localStart := time.Now()
	updateParts, err := eng.MapStage(ctx, "local-update", job.LocalOp, grouped)
	if err != nil {
		return nil, fmt.Errorf("local-update stage: %w", err)
	}
	res.LocalWall = time.Since(localStart)

	res.Updates = mbsp.Collect(updateParts)
	return res, nil
}
