package mbsp

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.MustRegister("double", func(_ *TaskContext, in Partition) (Partition, error) {
		out := make(Partition, len(in))
		for i, item := range in {
			out[i] = item.(int) * 2
		}
		return out, nil
	})
	reg.MustRegister("add-broadcast", func(ctx *TaskContext, in Partition) (Partition, error) {
		bv, err := ctx.Broadcast("offset")
		if err != nil {
			return nil, err
		}
		off := bv.(int)
		out := make(Partition, len(in))
		for i, item := range in {
			out[i] = item.(int) + off
		}
		return out, nil
	})
	reg.MustRegister("fail", func(_ *TaskContext, _ Partition) (Partition, error) {
		return nil, errors.New("boom")
	})
	reg.MustRegister("key-mod3", func(_ *TaskContext, in Partition) (Partition, error) {
		out := make(Partition, len(in))
		for i, item := range in {
			v := item.(int)
			out[i] = KeyedItem{Key: uint64(v % 3), Item: v}
		}
		return out, nil
	})
	return reg
}

func newLocal(t *testing.T, p int, reg *Registry) *LocalExecutor {
	t.Helper()
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: p, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	return exec
}

func intParts(parts ...[]int) []Partition {
	out := make([]Partition, len(parts))
	for i, p := range parts {
		out[i] = make(Partition, len(p))
		for j, v := range p {
			out[i][j] = v
		}
	}
	return out
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", func(*TaskContext, Partition) (Partition, error) { return nil, nil }); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register("x", nil); err == nil {
		t.Error("nil fn accepted")
	}
	if err := reg.Register("x", func(*TaskContext, Partition) (Partition, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("x", func(*TaskContext, Partition) (Partition, error) { return nil, nil }); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := reg.Lookup("missing"); !errors.Is(err, ErrUnknownOp) {
		t.Errorf("Lookup(missing) = %v", err)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "x" {
		t.Errorf("Names = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRegister duplicate did not panic")
		}
	}()
	reg.MustRegister("x", func(*TaskContext, Partition) (Partition, error) { return nil, nil })
}

func TestLocalExecutorBasicMap(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 4, reg)
	outputs, metrics, err := exec.RunTasks(context.Background(), "s1", "double", intParts([]int{1, 2}, []int{3}, nil, []int{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 4}, {6}, {}, {8, 10, 12}}
	for i, out := range outputs {
		if len(out) != len(want[i]) {
			t.Fatalf("partition %d: %v", i, out)
		}
		for j, v := range out {
			if v.(int) != want[i][j] {
				t.Fatalf("partition %d item %d = %v, want %d", i, j, v, want[i][j])
			}
		}
	}
	if len(metrics) != 4 {
		t.Fatalf("metrics count = %d", len(metrics))
	}
	for i, m := range metrics {
		if m.TaskID != i || m.Stage != "s1" {
			t.Errorf("metrics[%d] = %+v", i, m)
		}
		if m.WorkerID != i%4 {
			t.Errorf("task %d ran on worker %d, want %d", i, m.WorkerID, i%4)
		}
	}
	if metrics[3].InItems != 3 || metrics[3].OutItems != 3 {
		t.Errorf("item counts: %+v", metrics[3])
	}
}

func TestLocalExecutorBroadcast(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 2, reg)
	if err := exec.Broadcast(context.Background(), "offset", 100); err != nil {
		t.Fatal(err)
	}
	outputs, _, err := exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 101 || outputs[1][0].(int) != 102 {
		t.Errorf("outputs = %v", outputs)
	}
	// Re-broadcast replaces.
	if err := exec.Broadcast(context.Background(), "offset", 200); err != nil {
		t.Fatal(err)
	}
	outputs, _, err = exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 201 {
		t.Errorf("after rebroadcast: %v", outputs[0][0])
	}
	if err := exec.Broadcast(context.Background(), "", 1); err == nil {
		t.Error("empty broadcast id accepted")
	}
}

func TestLocalExecutorMissingBroadcast(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 1, reg)
	_, _, err := exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}))
	if err == nil || !errors.Is(err, ErrNoBroadcast) {
		t.Errorf("err = %v, want ErrNoBroadcast", err)
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Errorf("error not a TaskError: %v", err)
	} else if te.Stage != "s" {
		t.Errorf("TaskError = %+v", te)
	}
}

func TestLocalExecutorTaskFailure(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 2, reg)
	_, _, err := exec.RunTasks(context.Background(), "s", "fail", intParts([]int{1}, []int{2}))
	if err == nil {
		t.Fatal("expected error")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err %T not TaskError", err)
	}
}

func TestLocalExecutorUnknownOp(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 1, reg)
	if _, _, err := exec.RunTasks(context.Background(), "s", "nope", nil); !errors.Is(err, ErrUnknownOp) {
		t.Errorf("err = %v", err)
	}
}

func TestLocalExecutorClosed(t *testing.T) {
	reg := newTestRegistry(t)
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := exec.RunTasks(context.Background(), "s", "double", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("RunTasks after close = %v", err)
	}
	if err := exec.Broadcast(context.Background(), "x", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Broadcast after close = %v", err)
	}
}

func TestLocalExecutorConfigErrors(t *testing.T) {
	if _, err := NewLocalExecutor(LocalConfig{Parallelism: 0, Registry: NewRegistry()}); err == nil {
		t.Error("parallelism 0 accepted")
	}
	if _, err := NewLocalExecutor(LocalConfig{Parallelism: 1}); err == nil {
		t.Error("nil registry accepted")
	}
}

func TestLocalExecutorParallelismActuallyConcurrent(t *testing.T) {
	reg := NewRegistry()
	var peak, cur atomic.Int32
	reg.MustRegister("slow", func(_ *TaskContext, in Partition) (Partition, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		cur.Add(-1)
		return in, nil
	})
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	if _, _, err := exec.RunTasks(context.Background(), "s", "slow", intParts([]int{1}, []int{2}, []int{3}, []int{4})); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency = %d, want >= 2", peak.Load())
	}
}

func TestStragglerDelayDeterministic(t *testing.T) {
	d := NewStragglerDelay(42, 0.5, 10*time.Millisecond, 20*time.Millisecond)
	for task := 0; task < 20; task++ {
		a := d("stage", task, 0)
		b := d("stage", task, 1) // worker must not matter
		if a != b {
			t.Fatalf("task %d nondeterministic: %v vs %v", task, a, b)
		}
		if a != 0 && (a < 10*time.Millisecond || a >= 20*time.Millisecond) {
			t.Fatalf("delay %v out of range", a)
		}
	}
	// Roughly half the tasks should straggle.
	n := 0
	for task := 0; task < 200; task++ {
		if d("stage", task, 0) > 0 {
			n++
		}
	}
	if n < 60 || n > 140 {
		t.Errorf("straggler count = %d/200 at prob 0.5", n)
	}
	// Degenerate span returns minDelay.
	d2 := NewStragglerDelay(1, 1, 5*time.Millisecond, 5*time.Millisecond)
	if got := d2("s", 0, 0); got != 5*time.Millisecond {
		t.Errorf("degenerate span delay = %v", got)
	}
}

func TestEngineMapStageAndMetrics(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 2, reg)
	eng, err := NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Parallelism() != 2 {
		t.Errorf("Parallelism = %d", eng.Parallelism())
	}
	out, err := eng.MapStage(context.Background(), "assign", "double", intParts([]int{1, 2}, []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	if out[1][0].(int) != 6 {
		t.Errorf("out = %v", out)
	}
	ms := eng.Metrics()
	if len(ms) != 1 || ms[0].Stage != "assign" || len(ms[0].Tasks) != 2 {
		t.Fatalf("metrics = %+v", ms)
	}
	if ms[0].Wall <= 0 {
		t.Errorf("wall = %v", ms[0].Wall)
	}
	eng.ResetMetrics()
	if len(eng.Metrics()) != 0 {
		t.Error("ResetMetrics did not clear")
	}
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil executor accepted")
	}
}

func TestShuffleByKey(t *testing.T) {
	inputs := []Partition{
		{KeyedItem{Key: 0, Item: "a0"}, KeyedItem{Key: 1, Item: "b0"}},
		{KeyedItem{Key: 0, Item: "a1"}, KeyedItem{Key: 2, Item: "c0"}},
	}
	out, err := ShuffleByKey(inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// key0 -> part 0, key1 -> part 1, key2 -> part 0.
	if len(out[0]) != 2 || len(out[1]) != 1 {
		t.Fatalf("partition sizes: %d, %d", len(out[0]), len(out[1]))
	}
	g0 := out[0][0].(Group)
	if g0.Key != 0 || len(g0.Items) != 2 || g0.Items[0].(string) != "a0" || g0.Items[1].(string) != "a1" {
		t.Errorf("group 0 = %+v", g0)
	}
	g2 := out[0][1].(Group)
	if g2.Key != 2 {
		t.Errorf("second group key = %d", g2.Key)
	}
}

func TestShuffleByKeyPreservesEmissionOrder(t *testing.T) {
	// Items for the same key arriving from multiple partitions keep
	// source-partition order, then position order.
	inputs := []Partition{
		{KeyedItem{Key: 7, Item: 1}, KeyedItem{Key: 7, Item: 2}},
		{KeyedItem{Key: 7, Item: 3}},
		{KeyedItem{Key: 7, Item: 4}},
	}
	out, err := ShuffleByKey(inputs, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := out[7%4][0].(Group)
	for i, want := range []int{1, 2, 3, 4} {
		if g.Items[i].(int) != want {
			t.Fatalf("order: %v", g.Items)
		}
	}
}

func TestShuffleByKeyErrors(t *testing.T) {
	if _, err := ShuffleByKey(nil, 0); err == nil {
		t.Error("0 partitions accepted")
	}
	if _, err := ShuffleByKey([]Partition{{42}}, 1); err == nil {
		t.Error("non-KeyedItem accepted")
	}
}

func TestCollect(t *testing.T) {
	got := Collect(intParts([]int{1, 2}, nil, []int{3}))
	if len(got) != 3 || got[0].(int) != 1 || got[2].(int) != 3 {
		t.Errorf("Collect = %v", got)
	}
	if len(Collect(nil)) != 0 {
		t.Error("Collect(nil) not empty")
	}
}

func TestRoundRobin(t *testing.T) {
	items := make([]Item, 7)
	for i := range items {
		items[i] = i
	}
	parts, err := RoundRobin(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 3, 6}, {1, 4}, {2, 5}}
	for i, p := range parts {
		if len(p) != len(want[i]) {
			t.Fatalf("partition %d = %v", i, p)
		}
		for j, v := range p {
			if v.(int) != want[i][j] {
				t.Fatalf("partition %d = %v", i, p)
			}
		}
	}
	if _, err := RoundRobin(items, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestChunk(t *testing.T) {
	items := make([]Item, 10)
	for i := range items {
		items[i] = i
	}
	parts, err := Chunk(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	prev := -1
	for _, p := range parts {
		total += len(p)
		for _, v := range p {
			if v.(int) != prev+1 {
				t.Fatalf("chunk order broken: %v after %d", v, prev)
			}
			prev = v.(int)
		}
	}
	if total != 10 {
		t.Errorf("total = %d", total)
	}
	if _, err := Chunk(items, -1); err == nil {
		t.Error("p<0 accepted")
	}
}

// Property: round-robin partitioning preserves global order when
// re-interleaved, and every item appears exactly once.
func TestRoundRobinPartitionProperty(t *testing.T) {
	f := func(n uint8, p uint8) bool {
		np := int(p%16) + 1
		items := make([]Item, int(n))
		for i := range items {
			items[i] = i
		}
		parts, err := RoundRobin(items, np)
		if err != nil {
			return false
		}
		var all []int
		for _, part := range parts {
			for _, v := range part {
				all = append(all, v.(int))
			}
		}
		if len(all) != len(items) {
			return false
		}
		sort.Ints(all)
		for i, v := range all {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStageMetricsAggregates(t *testing.T) {
	s := StageMetrics{
		Stage: "s",
		Tasks: []TaskMetrics{
			{Duration: 10 * time.Millisecond},
			{Duration: 10 * time.Millisecond},
			{Duration: 10 * time.Millisecond},
			{Duration: 40 * time.Millisecond}, // straggler: mean=17.5ms, 1.2x=21ms
		},
	}
	if got := s.TotalTaskTime(); got != 70*time.Millisecond {
		t.Errorf("TotalTaskTime = %v", got)
	}
	if got := s.MeanTaskTime(); got != 17500*time.Microsecond {
		t.Errorf("MeanTaskTime = %v", got)
	}
	if got := s.MaxTaskTime(); got != 40*time.Millisecond {
		t.Errorf("MaxTaskTime = %v", got)
	}
	if got := s.Stragglers(); got != 1 {
		t.Errorf("Stragglers = %d", got)
	}
	if got := s.StragglerFraction(); got != 0.25 {
		t.Errorf("StragglerFraction = %v", got)
	}
	empty := StageMetrics{}
	if empty.MeanTaskTime() != 0 || empty.Stragglers() != 0 || empty.StragglerFraction() != 0 {
		t.Error("empty metrics not zero")
	}
}

func TestDelayInjectionProducesStragglers(t *testing.T) {
	reg := newTestRegistry(t)
	exec, err := NewLocalExecutor(LocalConfig{
		Parallelism: 4,
		Registry:    reg,
		Delay: func(_ string, taskID, _ int) time.Duration {
			if taskID == 0 {
				return 50 * time.Millisecond
			}
			return time.Millisecond
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	eng, err := NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MapStage(context.Background(), "s", "double", intParts([]int{1}, []int{2}, []int{3}, []int{4})); err != nil {
		t.Fatal(err)
	}
	ms := eng.Metrics()
	if got := ms[0].Stragglers(); got != 1 {
		t.Errorf("Stragglers = %d, want 1", got)
	}
}

func TestTaskRetriesRecoverTransientFailures(t *testing.T) {
	reg := NewRegistry()
	var calls atomic.Int32
	reg.MustRegister("flaky", func(ctx *TaskContext, in Partition) (Partition, error) {
		calls.Add(1)
		if ctx.Attempt < 2 {
			return nil, errors.New("transient")
		}
		return in, nil
	})
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: 1, Registry: reg, TaskRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	out, _, err := exec.RunTasks(context.Background(), "s", "flaky", intParts([]int{7}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].(int) != 7 {
		t.Errorf("output = %v", out[0])
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (two failures + success)", calls.Load())
	}
}

func TestFailInjectionRecordsRetries(t *testing.T) {
	reg := newTestRegistry(t)
	exec, err := NewLocalExecutor(LocalConfig{
		Parallelism: 2,
		Registry:    reg,
		TaskRetries: 2,
		Fail: func(_ string, taskID, attempt int) error {
			if taskID == 1 && attempt == 0 {
				return errors.New("injected crash")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	outputs, metrics, err := exec.RunTasks(context.Background(), "s", "double", intParts([]int{1}, []int{2}, []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[1][0].(int) != 4 {
		t.Errorf("outputs = %v", outputs)
	}
	if metrics[0].Retries != 0 || metrics[1].Retries != 1 || metrics[2].Retries != 0 {
		t.Errorf("retries = %d,%d,%d; want 0,1,0", metrics[0].Retries, metrics[1].Retries, metrics[2].Retries)
	}
}

func TestLocalExecutorContextCancel(t *testing.T) {
	reg := NewRegistry()
	started := make(chan struct{}, 8)
	reg.MustRegister("slow", func(_ *TaskContext, in Partition) (Partition, error) {
		started <- struct{}{}
		time.Sleep(20 * time.Millisecond)
		return in, nil
	})
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, _, err = exec.RunTasks(ctx, "s", "slow", intParts([]int{1}, []int{2}, []int{3}, []int{4}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineRecordsFailedStage(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 2, reg)
	eng, err := NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MapStage(context.Background(), "bad", "fail", intParts([]int{1})); err == nil {
		t.Fatal("expected stage failure")
	}
	ms := eng.Metrics()
	if len(ms) != 1 || !ms[0].Failed {
		t.Fatalf("metrics = %+v, want one failed stage", ms)
	}
	if _, err := eng.MapStage(context.Background(), "good", "double", intParts([]int{1})); err != nil {
		t.Fatal(err)
	}
	ms = eng.Metrics()
	if len(ms) != 2 || ms[1].Failed {
		t.Fatalf("metrics = %+v, want second stage not failed", ms)
	}
}

func TestStageMetricsRetries(t *testing.T) {
	s := StageMetrics{Tasks: []TaskMetrics{{Retries: 2}, {}, {Retries: 1}}}
	if got := s.Retries(); got != 3 {
		t.Errorf("Retries = %d, want 3", got)
	}
	if got := (StageMetrics{}).Retries(); got != 0 {
		t.Errorf("empty Retries = %d", got)
	}
}

func TestTaskRetriesExhausted(t *testing.T) {
	reg := NewRegistry()
	var calls atomic.Int32
	reg.MustRegister("always-fails", func(*TaskContext, Partition) (Partition, error) {
		calls.Add(1)
		return nil, errors.New("permanent")
	})
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: 1, Registry: reg, TaskRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	if _, _, err := exec.RunTasks(context.Background(), "s", "always-fails", intParts([]int{1})); err == nil {
		t.Fatal("expected failure after retries exhausted")
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", calls.Load())
	}
}
