package membership

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // most tests drive transitions by hand
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func TestLifecycleTransitions(t *testing.T) {
	r := newTestRegistry(t, Config{})

	// Initial fixed set: Track seeds ready.
	r.Track("w0")
	if st, ok := r.State("w0"); !ok || st != StateReady {
		t.Fatalf("after Track: state = %v, %v", st, ok)
	}

	// Crash detected by the executor.
	cause := errors.New("connection reset")
	r.MarkDead("w0", cause)
	if st, _ := r.State("w0"); st != StateDead {
		t.Fatalf("after MarkDead: state = %v", st)
	}
	if err := r.LastErr("w0"); !errors.Is(err, cause) {
		t.Fatalf("LastErr = %v, want %v", err, cause)
	}

	// The restarted process announces: dead -> rejoining.
	r.hello("w0")
	if st, _ := r.State("w0"); st != StateRejoining {
		t.Fatalf("after hello on dead: state = %v", st)
	}
	if got := r.Candidates(); len(got) != 1 || got[0] != "w0" {
		t.Fatalf("Candidates = %v, want [w0]", got)
	}

	// Executor admits it.
	r.MarkReady("w0")
	if st, _ := r.State("w0"); st != StateReady {
		t.Fatalf("after MarkReady: state = %v", st)
	}
	if got := r.Candidates(); len(got) != 0 {
		t.Fatalf("Candidates after admit = %v, want none", got)
	}

	// A brand-new worker announces: unknown -> joining.
	r.hello("w9")
	if st, _ := r.State("w9"); st != StateJoining {
		t.Fatalf("hello on unknown: state = %v", st)
	}

	// Clean drain.
	r.goodbye("w0")
	if st, _ := r.State("w0"); st != StateDead {
		t.Fatalf("after goodbye: state = %v", st)
	}
}

func TestEventsDrain(t *testing.T) {
	r := newTestRegistry(t, Config{})
	r.Track("w0")
	r.MarkDead("w0", errors.New("boom"))
	r.hello("w0")
	r.MarkReady("w0")
	r.goodbye("w0")

	evs := r.Drain()
	kinds := make([]EventKind, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []EventKind{EventDied, EventHello, EventReadmitted, EventGoodbye}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("second drain = %v, want empty", got)
	}
}

func TestHelloGoodbyeOverWire(t *testing.T) {
	r := newTestRegistry(t, Config{ListenAddr: "127.0.0.1:0"})
	if r.Addr() == "" {
		t.Fatal("no listener address")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if err := Announce(ctx, r.Addr(), "10.0.0.1:7000"); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.State("10.0.0.1:7000"); st != StateJoining {
		t.Fatalf("after wire hello: state = %v", st)
	}
	r.MarkReady("10.0.0.1:7000")
	if err := Goodbye(ctx, r.Addr(), "10.0.0.1:7000"); err != nil {
		t.Fatal(err)
	}
	if st, _ := r.State("10.0.0.1:7000"); st != StateDead {
		t.Fatalf("after wire goodbye: state = %v", st)
	}
}

func TestWaitForCandidate(t *testing.T) {
	r := newTestRegistry(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	var got string
	var gotErr error
	go func() {
		defer wg.Done()
		got, gotErr = r.WaitForCandidate(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	r.hello("w3")
	wg.Wait()
	if gotErr != nil || got != "w3" {
		t.Fatalf("WaitForCandidate = %q, %v", got, gotErr)
	}

	// Timeout path.
	short, scancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer scancel()
	r.MarkReady("w3")
	if _, err := r.WaitForCandidate(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitForCandidate timeout err = %v", err)
	}
}

func TestWaitForMembers(t *testing.T) {
	r := newTestRegistry(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	done := make(chan struct{})
	var addrs []string
	var err error
	go func() {
		defer close(done)
		addrs, err = r.WaitForMembers(ctx, 2)
	}()
	r.hello("b")
	time.Sleep(10 * time.Millisecond)
	r.hello("a")
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != "a" || addrs[1] != "b" {
		t.Fatalf("WaitForMembers = %v, want [a b]", addrs)
	}
}

func TestProbeDrivenSuspectAndDeath(t *testing.T) {
	var mu sync.Mutex
	healthy := map[string]bool{"w0": true}
	prober := func(ctx context.Context, addr string) error {
		mu.Lock()
		defer mu.Unlock()
		if healthy[addr] {
			return nil
		}
		return errors.New("probe refused")
	}
	r := newTestRegistry(t, Config{
		ProbeInterval: 10 * time.Millisecond,
		SuspectAfter:  25 * time.Millisecond,
	})
	r.SetProber(prober)
	r.Track("w0")

	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, _ := r.State("w0"); st == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		st, _ := r.State("w0")
		t.Fatalf("state = %v, want %v", st, want)
	}

	mu.Lock()
	healthy["w0"] = false
	mu.Unlock()
	waitState(StateSuspect)
	waitState(StateDead)

	// Resurrection via probe: dead -> rejoining.
	mu.Lock()
	healthy["w0"] = true
	mu.Unlock()
	waitState(StateRejoining)
}

func TestCloseUnblocksWaiters(t *testing.T) {
	r, err := New(Config{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.WaitForCandidate(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = r.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not unblocked by Close")
	}
}
