package membership

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// The Hello/Goodbye handshake is a one-shot gob exchange on its own
// listener, deliberately separate from the task RPC protocol: a worker
// can announce itself before it is dialable by the executor, and the
// registry stays usable with executors that know nothing about it.

const (
	kindHello   = "hello"
	kindGoodbye = "goodbye"

	announceTimeout = 5 * time.Second
)

type announcement struct {
	Kind string // kindHello or kindGoodbye
	Addr string // the worker's task-RPC listen address
}

type announceReply struct {
	Err string
}

type announceListener struct {
	ln net.Listener
	r  *Registry
	wg sync.WaitGroup
}

func newAnnounceListener(bind string, r *Registry) (*announceListener, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("membership: listen %s: %w", bind, err)
	}
	al := &announceListener{ln: ln, r: r}
	al.wg.Add(1)
	go al.acceptLoop()
	return al, nil
}

func (al *announceListener) addr() string { return al.ln.Addr().String() }

func (al *announceListener) close() error {
	err := al.ln.Close()
	al.wg.Wait()
	return err
}

func (al *announceListener) acceptLoop() {
	defer al.wg.Done()
	for {
		conn, err := al.ln.Accept()
		if err != nil {
			return // listener closed
		}
		al.wg.Add(1)
		go func() {
			defer al.wg.Done()
			al.handle(conn)
		}()
	}
}

func (al *announceListener) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(announceTimeout))
	var msg announcement
	if err := gob.NewDecoder(conn).Decode(&msg); err != nil {
		return
	}
	var reply announceReply
	switch {
	case msg.Addr == "":
		reply.Err = "membership: announcement with empty address"
	case msg.Kind == kindHello:
		al.r.hello(msg.Addr)
	case msg.Kind == kindGoodbye:
		al.r.goodbye(msg.Addr)
	default:
		reply.Err = fmt.Sprintf("membership: unknown announcement kind %q", msg.Kind)
	}
	_ = gob.NewEncoder(conn).Encode(reply)
}

// Announce sends a Hello for workerAddr to the registry listening at
// driver. Workers call this once their task listener is up.
func Announce(ctx context.Context, driver, workerAddr string) error {
	return send(ctx, driver, announcement{Kind: kindHello, Addr: workerAddr})
}

// Goodbye asks the registry at driver to drain workerAddr cleanly.
func Goodbye(ctx context.Context, driver, workerAddr string) error {
	return send(ctx, driver, announcement{Kind: kindGoodbye, Addr: workerAddr})
}

func send(ctx context.Context, driver string, msg announcement) error {
	d := net.Dialer{Timeout: announceTimeout}
	conn, err := d.DialContext(ctx, "tcp", driver)
	if err != nil {
		return fmt.Errorf("membership: dial %s: %w", driver, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(announceTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	_ = conn.SetDeadline(deadline)
	if err := gob.NewEncoder(conn).Encode(msg); err != nil {
		return fmt.Errorf("membership: send %s: %w", msg.Kind, err)
	}
	var reply announceReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return fmt.Errorf("membership: %s reply: %w", msg.Kind, err)
	}
	if reply.Err != "" {
		return fmt.Errorf("membership: %s rejected: %s", msg.Kind, reply.Err)
	}
	return nil
}
