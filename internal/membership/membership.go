// Package membership tracks the worker set of a running cluster as a
// runtime quantity instead of a startup constant.
//
// The driver owns a Registry. Each worker address moves through the
// lifecycle
//
//	joining -> ready -> suspect -> dead -> rejoining -> ready -> ...
//
// fed by two signal sources:
//
//   - a Hello/Goodbye handshake (workers announce themselves on start
//     and drain cleanly on shutdown) served on the registry's own tiny
//     gob-over-TCP listener, and
//   - periodic lightweight health probes executed by an injected Prober
//     (the rpcexec executor installs a ping over its RPC protocol; the
//     registry itself has no dependency on the executor).
//
// The registry only records state; admission into the dispatch rotation
// is the executor's job, performed between batches so the worker count
// never changes mid-stage.
package membership

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a member's position in the lifecycle.
type State int

const (
	// StateJoining: announced via Hello, never yet admitted.
	StateJoining State = iota + 1
	// StateReady: in the dispatch rotation.
	StateReady
	// StateSuspect: in the rotation but failing health probes.
	StateSuspect
	// StateDead: out of the rotation (crash detected, probes exhausted,
	// or clean Goodbye).
	StateDead
	// StateRejoining: was dead, then announced or probed healthy again;
	// a candidate for readmission.
	StateRejoining
)

func (s State) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateReady:
		return "ready"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateRejoining:
		return "rejoining"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// EventKind classifies a membership transition.
type EventKind int

const (
	// EventHello: a worker announced itself (first contact or resurrection).
	EventHello EventKind = iota + 1
	// EventGoodbye: a worker asked to drain cleanly.
	EventGoodbye
	// EventSuspected: probes started failing for a ready member.
	EventSuspected
	// EventDied: a member was declared dead.
	EventDied
	// EventReadmitted: a joining/rejoining member entered the rotation.
	EventReadmitted
)

func (k EventKind) String() string {
	switch k {
	case EventHello:
		return "hello"
	case EventGoodbye:
		return "goodbye"
	case EventSuspected:
		return "suspected"
	case EventDied:
		return "died"
	case EventReadmitted:
		return "readmitted"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event records one membership transition.
type Event struct {
	Kind EventKind
	Addr string
	Err  error // cause, for Suspected/Died
}

func (e Event) String() string {
	if e.Err != nil {
		return fmt.Sprintf("%s %s: %v", e.Kind, e.Addr, e.Err)
	}
	return fmt.Sprintf("%s %s", e.Kind, e.Addr)
}

// Prober checks one worker's health; nil error means healthy. It must
// honor ctx (the registry bounds each probe with a deadline).
type Prober func(ctx context.Context, addr string) error

// Config parameterizes a Registry. Zero fields get defaults.
type Config struct {
	// ListenAddr is the bind address for the Hello/Goodbye listener.
	// Empty disables the listener (probe-only operation).
	ListenAddr string
	// ProbeInterval is the health-probe period. Zero means 1s;
	// negative disables probing entirely.
	ProbeInterval time.Duration
	// SuspectAfter is how long a ready member may fail probes before it
	// is marked suspect; after another SuspectAfter without a success
	// it is declared dead. Zero means 3x ProbeInterval.
	SuspectAfter time.Duration
	// OnEvent, when set, observes every transition (called without the
	// registry lock held; must not block for long).
	OnEvent func(Event)
}

const (
	defaultProbeInterval = time.Second
	// maxEvents bounds the drainable backlog.
	maxEvents = 256
)

// ErrClosed is returned by waits on a closed registry.
var ErrClosed = errors.New("membership: registry closed")

type member struct {
	state      State
	lastOK     time.Time // last successful probe or announce
	lastErr    error     // most recent failure cause
	generation int       // bumped on each rejoin
}

// Registry is the driver-owned membership table. All methods are safe
// for concurrent use.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
	events  []Event
	changed chan struct{} // closed+replaced on every state change

	prober   Prober
	listener *announceListener
	done     chan struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New creates a registry, starts its Hello/Goodbye listener (if
// configured) and its probe loop (probes no-op until SetProber).
func New(cfg Config) (*Registry, error) {
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.SuspectAfter <= 0 && cfg.ProbeInterval > 0 {
		cfg.SuspectAfter = 3 * cfg.ProbeInterval
	}
	r := &Registry{
		cfg:     cfg,
		members: make(map[string]*member),
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.ListenAddr != "" {
		ln, err := newAnnounceListener(cfg.ListenAddr, r)
		if err != nil {
			return nil, err
		}
		r.listener = ln
	}
	if cfg.ProbeInterval > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Addr returns the Hello/Goodbye listener address, or "" when disabled.
func (r *Registry) Addr() string {
	if r.listener == nil {
		return ""
	}
	return r.listener.addr()
}

// SetProber installs the health-probe function. Until set, the probe
// loop idles. Typically called by the executor once it can ping.
func (r *Registry) SetProber(p Prober) {
	r.mu.Lock()
	r.prober = p
	r.mu.Unlock()
}

// Close stops the listener and probe loop. Waiters unblock with ErrClosed.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	var err error
	if r.listener != nil {
		err = r.listener.close()
	}
	r.wg.Wait()
	return err
}

// Track seeds addr as a ready member (used for the initial fixed set
// dialed at startup, which never said Hello).
func (r *Registry) Track(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.memberLocked(addr)
	m.state = StateReady
	m.lastOK = time.Now()
	m.lastErr = nil
	r.notifyLocked()
}

// MarkReady records that addr was admitted into the dispatch rotation.
func (r *Registry) MarkReady(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.memberLocked(addr)
	was := m.state
	m.state = StateReady
	m.lastOK = time.Now()
	m.lastErr = nil
	if was == StateJoining || was == StateRejoining {
		r.emitLocked(Event{Kind: EventReadmitted, Addr: addr})
	}
	r.notifyLocked()
}

// MarkDead records that addr left the rotation, with an optional cause
// (nil for a clean drain).
func (r *Registry) MarkDead(addr string, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.memberLocked(addr)
	if m.state == StateDead {
		return
	}
	m.state = StateDead
	m.lastErr = cause
	r.emitLocked(Event{Kind: EventDied, Addr: addr, Err: cause})
	r.notifyLocked()
}

// State reports addr's current state.
func (r *Registry) State(addr string) (State, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[addr]
	if !ok {
		return 0, false
	}
	return m.state, true
}

// LastErr reports the most recent failure cause recorded for addr.
func (r *Registry) LastErr(addr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[addr]; ok {
		return m.lastErr
	}
	return nil
}

// States snapshots the full table.
func (r *Registry) States() map[string]State {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]State, len(r.members))
	for a, m := range r.members {
		out[a] = m.state
	}
	return out
}

// Candidates returns joining/rejoining addresses in sorted order —
// the workers awaiting admission at the next batch boundary.
func (r *Registry) Candidates() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for a, m := range r.members {
		if m.state == StateJoining || m.state == StateRejoining {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Drain returns and clears the pending event backlog (oldest first).
func (r *Registry) Drain() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.events
	r.events = nil
	return out
}

// WaitForMembers blocks until at least n members are alive (any state
// but dead) and returns their addresses sorted.
func (r *Registry) WaitForMembers(ctx context.Context, n int) ([]string, error) {
	for {
		r.mu.Lock()
		var alive []string
		for a, m := range r.members {
			if m.state != StateDead {
				alive = append(alive, a)
			}
		}
		ch := r.changed
		r.mu.Unlock()
		if len(alive) >= n {
			sort.Strings(alive)
			return alive, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, fmt.Errorf("membership: waiting for %d members (have %d): %w", n, len(alive), ctx.Err())
		case <-r.done:
			return nil, ErrClosed
		}
	}
}

// WaitForCandidate blocks until at least one worker is awaiting
// admission (joining/rejoining) and returns its address.
func (r *Registry) WaitForCandidate(ctx context.Context) (string, error) {
	for {
		if c := r.Candidates(); len(c) > 0 {
			return c[0], nil
		}
		r.mu.Lock()
		ch := r.changed
		r.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return "", fmt.Errorf("membership: waiting for join candidate: %w", ctx.Err())
		case <-r.done:
			return "", ErrClosed
		}
	}
}

// hello processes a worker announcement (from the listener or a probe
// that found a dead member alive again).
func (r *Registry) hello(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, known := r.members[addr]
	if !known {
		m = r.memberLocked(addr)
		m.state = StateJoining
		m.lastOK = time.Now()
		r.emitLocked(Event{Kind: EventHello, Addr: addr})
		r.notifyLocked()
		return
	}
	m.lastOK = time.Now()
	switch m.state {
	case StateDead:
		m.state = StateRejoining
		m.generation++
		m.lastErr = nil
		r.emitLocked(Event{Kind: EventHello, Addr: addr})
	case StateSuspect:
		// It answered: clear the suspicion.
		m.state = StateReady
	}
	r.notifyLocked()
}

// goodbye processes a clean-drain request: the member is marked dead so
// the executor retires its slot at the next batch boundary.
func (r *Registry) goodbye(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, known := r.members[addr]
	if !known || m.state == StateDead {
		return
	}
	m.state = StateDead
	m.lastErr = nil
	r.emitLocked(Event{Kind: EventGoodbye, Addr: addr})
	r.notifyLocked()
}

func (r *Registry) memberLocked(addr string) *member {
	m, ok := r.members[addr]
	if !ok {
		m = &member{}
		r.members[addr] = m
	}
	return m
}

func (r *Registry) emitLocked(ev Event) {
	r.events = append(r.events, ev)
	if len(r.events) > maxEvents {
		r.events = r.events[len(r.events)-maxEvents:]
	}
	if r.cfg.OnEvent != nil {
		go r.cfg.OnEvent(ev)
	}
}

func (r *Registry) notifyLocked() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// probeLoop periodically probes every member and applies transitions:
// ready members failing past SuspectAfter become suspect, then dead;
// dead members answering again become rejoining candidates.
func (r *Registry) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		}
		r.mu.Lock()
		prober := r.prober
		addrs := make([]string, 0, len(r.members))
		for a := range r.members {
			addrs = append(addrs, a)
		}
		r.mu.Unlock()
		if prober == nil {
			continue
		}
		for _, addr := range addrs {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeInterval)
			err := prober(ctx, addr)
			cancel()
			r.recordProbe(addr, err)
		}
	}
}

func (r *Registry) recordProbe(addr string, err error) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[addr]
	if !ok {
		return
	}
	if err == nil {
		m.lastOK = now
		switch m.state {
		case StateSuspect:
			m.state = StateReady
			m.lastErr = nil
			r.notifyLocked()
		case StateDead:
			m.state = StateRejoining
			m.generation++
			m.lastErr = nil
			r.emitLocked(Event{Kind: EventHello, Addr: addr})
			r.notifyLocked()
		}
		return
	}
	m.lastErr = err
	since := now.Sub(m.lastOK)
	switch m.state {
	case StateReady:
		if since > r.cfg.SuspectAfter {
			m.state = StateSuspect
			r.emitLocked(Event{Kind: EventSuspected, Addr: addr, Err: err})
			r.notifyLocked()
		}
	case StateSuspect:
		if since > 2*r.cfg.SuspectAfter {
			m.state = StateDead
			r.emitLocked(Event{Kind: EventDied, Addr: addr, Err: err})
			r.notifyLocked()
		}
	}
}
