package stream

import (
	"errors"
	"fmt"
	"io"

	"diststream/internal/vclock"
)

// Producer replays a source at a fixed record rate against a virtual
// clock, substituting for the paper's Kafka producer ("reads data records
// from local disk sequentially and outputs the records at a user-defined
// rate"). Records are re-stamped with their emission time so downstream
// decay and quality metrics see the configured rate regardless of the
// timestamps the source carried.
type Producer struct {
	src      Source
	rate     float64 // records per virtual second
	clock    *vclock.Manual
	emitted  uint64
	restamps bool
}

// ProducerOption configures a Producer.
type ProducerOption func(*Producer)

// WithOriginalTimestamps keeps the source's own timestamps instead of
// re-stamping at the configured rate. The producer then only paces Seq
// assignment.
func WithOriginalTimestamps() ProducerOption {
	return func(p *Producer) { p.restamps = false }
}

// NewProducer returns a producer emitting from src at rate records per
// virtual second on the given manual clock.
func NewProducer(src Source, rate float64, clock *vclock.Manual, opts ...ProducerOption) (*Producer, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("stream: producer rate %v must be positive", rate)
	}
	if clock == nil {
		return nil, errors.New("stream: producer requires a clock")
	}
	p := &Producer{src: src, rate: rate, clock: clock, restamps: true}
	for _, opt := range opts {
		opt(p)
	}
	return p, nil
}

// Rate returns the configured emission rate in records per second.
func (p *Producer) Rate() float64 { return p.rate }

// Emitted returns how many records have been produced so far.
func (p *Producer) Emitted() uint64 { return p.emitted }

// Next emits the next record, advancing the virtual clock by the
// inter-arrival gap 1/rate. It returns io.EOF when the source drains.
func (p *Producer) Next() (Record, error) {
	r, err := p.src.Next()
	if err != nil {
		return Record{}, err
	}
	p.clock.Advance(vclock.Duration(1 / p.rate))
	r.Seq = p.emitted
	if p.restamps {
		r.Timestamp = p.clock.Now()
	}
	p.emitted++
	return r, nil
}

var _ Source = (*Producer)(nil)

// Batcher groups a source's records into time-window mini-batches of a
// fixed virtual duration, mirroring Spark Streaming's batch interval. A
// batch covers the half-open window [start, start+interval).
type Batcher struct {
	src      Source
	interval vclock.Duration
	start    vclock.Time
	pending  *Record
	batchNo  int
	consumed int
	done     bool
}

// Batch is one mini-batch of records plus its window metadata.
type Batch struct {
	// Index is the zero-based batch number.
	Index int
	// Start and End delimit the half-open window [Start, End).
	Start, End vclock.Time
	// Records holds the batch's records in arrival order.
	Records []Record
}

// NewBatcher cuts src into batches of the given virtual-time interval.
func NewBatcher(src Source, interval vclock.Duration) (*Batcher, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("stream: batch interval %v must be positive", interval)
	}
	return &Batcher{src: src, interval: interval, start: -1}, nil
}

// SetInterval changes the window length for subsequent batches (the
// batch currently being assembled is unaffected). Non-positive intervals
// are rejected. This is the control surface for adaptive batch sizing.
func (b *Batcher) SetInterval(interval vclock.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("stream: batch interval %v must be positive", interval)
	}
	b.interval = interval
	return nil
}

// Interval returns the current window length.
func (b *Batcher) Interval() vclock.Duration { return b.interval }

// Next returns the next non-empty mini-batch, or io.EOF after the source
// drains. Empty windows are skipped: the window advances to the next
// record's timestamp (Spark Streaming would emit empty batches; skipping
// them is equivalent for this pipeline because an empty batch is a no-op
// apart from decay, which the global update step applies by elapsed time,
// not batch count).
func (b *Batcher) Next() (Batch, error) {
	if b.done && b.pending == nil {
		return Batch{}, io.EOF
	}
	var records []Record
	if b.pending != nil {
		first := *b.pending
		b.pending = nil
		if b.start < 0 || first.Timestamp >= b.start.Add(b.interval) {
			b.start = first.Timestamp
		}
		records = append(records, first)
	}
	for {
		if b.done {
			break
		}
		r, err := b.src.Next()
		if errors.Is(err, io.EOF) {
			b.done = true
			break
		}
		if err != nil {
			return Batch{}, err
		}
		b.consumed++
		if b.start < 0 {
			b.start = r.Timestamp
		}
		if r.Timestamp >= b.start.Add(b.interval) {
			b.pending = &r
			break
		}
		records = append(records, r)
	}
	if len(records) == 0 {
		return Batch{}, io.EOF
	}
	batch := Batch{
		Index:   b.batchNo,
		Start:   b.start,
		End:     b.start.Add(b.interval),
		Records: records,
	}
	b.batchNo++
	b.start = b.start.Add(b.interval)
	return batch, nil
}

// BatcherState is the serializable position of a Batcher: everything
// needed to continue cutting an identical stream into identical batches
// after a restart. The checkpoint subsystem persists it alongside the
// model; on resume, the pipeline skips State.Consumed records of a fresh
// source and calls Restore, after which Next yields exactly the batches
// the interrupted run would have produced.
type BatcherState struct {
	// Interval is the current window length (it drifts under adaptive
	// batch sizing, so the configured starting interval is not enough).
	Interval vclock.Duration
	// Start is the start of the next window.
	Start vclock.Time
	// BatchNo is the next batch index to emit.
	BatchNo int
	// Consumed counts records pulled from the source so far, including a
	// pending record that has not been emitted in a batch yet.
	Consumed int
	// Done records source exhaustion.
	Done bool
	// HasPending marks that Pending holds a read-ahead record (the first
	// record of the next window, pulled while closing the previous one).
	HasPending bool
	// Pending is the read-ahead record when HasPending is set.
	Pending Record
}

// State captures the batcher's position for a checkpoint.
func (b *Batcher) State() BatcherState {
	st := BatcherState{
		Interval: b.interval,
		Start:    b.start,
		BatchNo:  b.batchNo,
		Consumed: b.consumed,
		Done:     b.done,
	}
	if b.pending != nil {
		st.HasPending = true
		st.Pending = b.pending.Clone()
	}
	return st
}

// Restore repositions the batcher to a previously captured state. The
// underlying source must already be advanced past State.Consumed records
// (the caller replays and discards them); the batcher itself only
// restores its window bookkeeping and read-ahead record.
func (b *Batcher) Restore(st BatcherState) error {
	if st.Interval <= 0 {
		return fmt.Errorf("stream: restore: batch interval %v must be positive", st.Interval)
	}
	if st.BatchNo < 0 || st.Consumed < 0 {
		return fmt.Errorf("stream: restore: negative position (batch %d, consumed %d)", st.BatchNo, st.Consumed)
	}
	b.interval = st.Interval
	b.start = st.Start
	b.batchNo = st.BatchNo
	b.consumed = st.Consumed
	b.done = st.Done
	b.pending = nil
	if st.HasPending {
		rec := st.Pending.Clone()
		b.pending = &rec
	}
	return nil
}

// Consumed returns how many records have been pulled from the source,
// including a pending read-ahead record.
func (b *Batcher) Consumed() int { return b.consumed }

// Batches drains the whole source into a batch slice; a convenience for
// tests and offline experiments.
func Batches(src Source, interval vclock.Duration) ([]Batch, error) {
	batcher, err := NewBatcher(src, interval)
	if err != nil {
		return nil, err
	}
	var out []Batch
	for {
		batch, err := batcher.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, batch)
	}
}
