package stream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sort"
	"testing"

	"diststream/internal/vclock"
	"diststream/internal/vector"
)

func mkRecords(n int, rate float64) []Record {
	vs := make([]vector.Vector, n)
	labels := make([]int, n)
	for i := range vs {
		vs[i] = vector.Vector{float64(i), float64(i * 2)}
		labels[i] = i % 3
	}
	recs, err := FromVectors(vs, labels, rate)
	if err != nil {
		panic(err)
	}
	return recs
}

func TestFromVectors(t *testing.T) {
	recs := mkRecords(5, 2) // 2 rec/s => 0.5s apart
	if len(recs) != 5 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[1].Timestamp != 0.5 {
		t.Errorf("timestamp = %v, want 0.5", recs[1].Timestamp)
	}
	if recs[4].Seq != 4 {
		t.Errorf("seq = %d, want 4", recs[4].Seq)
	}
	if recs[2].Label != 2 {
		t.Errorf("label = %d, want 2", recs[2].Label)
	}
}

func TestFromVectorsErrors(t *testing.T) {
	if _, err := FromVectors([]vector.Vector{{1}}, nil, 0); err == nil {
		t.Error("rate 0 should error")
	}
	if _, err := FromVectors([]vector.Vector{{1}}, []int{1, 2}, 1); err == nil {
		t.Error("label mismatch should error")
	}
	recs, err := FromVectors([]vector.Vector{{1}}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Label != -1 {
		t.Errorf("nil labels should yield -1, got %d", recs[0].Label)
	}
}

func TestSliceSource(t *testing.T) {
	recs := mkRecords(3, 1)
	src := NewSliceSource(recs)
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("drained %d", len(got))
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
	src.Reset()
	if r, err := src.Next(); err != nil || r.Seq != 0 {
		t.Errorf("after Reset: %v %v", r, err)
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := NewFuncSource(func() (Record, error) {
		if n >= 2 {
			return Record{}, io.EOF
		}
		n++
		return Record{Seq: uint64(n)}, nil
	})
	got, err := Drain(src)
	if err != nil || len(got) != 2 {
		t.Fatalf("Drain = %v, %v", got, err)
	}
}

func TestRepeatSource(t *testing.T) {
	base := mkRecords(4, 1) // timestamps 0,1,2,3
	src, err := NewRepeatSource(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 12 {
		t.Fatalf("Len = %d, want 12", src.Len())
	}
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("drained %d", len(got))
	}
	// Sequence numbers must be globally increasing and timestamps strictly
	// increasing across pass boundaries.
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("seq not consecutive at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
		if got[i].Timestamp <= got[i-1].Timestamp {
			t.Fatalf("timestamps not strictly increasing at %d: %v then %v",
				i, got[i-1].Timestamp, got[i].Timestamp)
		}
	}
	// Vector payloads must repeat.
	if !got[4].Values.Equal(got[0].Values) {
		t.Errorf("pass 2 record 0 differs: %v vs %v", got[4].Values, got[0].Values)
	}
}

func TestRepeatSourceErrors(t *testing.T) {
	if _, err := NewRepeatSource(nil, 2); err == nil {
		t.Error("empty base should error")
	}
	if _, err := NewRepeatSource(mkRecords(1, 1), 0); err == nil {
		t.Error("repeats=0 should error")
	}
}

func TestProducerRestampsAtRate(t *testing.T) {
	clock := vclock.NewManual(0)
	prod, err := NewProducer(NewSliceSource(mkRecords(10, 1)), 5, clock)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(prod)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("drained %d", len(got))
	}
	// At 5 rec/s the 10th record arrives at t=2.0.
	if got[9].Timestamp < 1.999 || got[9].Timestamp > 2.001 {
		t.Errorf("last timestamp = %v, want ~2.0", got[9].Timestamp)
	}
	if prod.Emitted() != 10 {
		t.Errorf("Emitted = %d", prod.Emitted())
	}
	if prod.Rate() != 5 {
		t.Errorf("Rate = %v", prod.Rate())
	}
}

func TestProducerOriginalTimestamps(t *testing.T) {
	clock := vclock.NewManual(0)
	base := mkRecords(3, 1)
	prod, err := NewProducer(NewSliceSource(base), 100, clock, WithOriginalTimestamps())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(prod)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Timestamp != base[i].Timestamp {
			t.Errorf("record %d restamped: %v vs %v", i, got[i].Timestamp, base[i].Timestamp)
		}
	}
}

func TestProducerErrors(t *testing.T) {
	if _, err := NewProducer(NewSliceSource(nil), 0, vclock.NewManual(0)); err == nil {
		t.Error("rate 0 should error")
	}
	if _, err := NewProducer(NewSliceSource(nil), 1, nil); err == nil {
		t.Error("nil clock should error")
	}
}

func TestBatcherWindows(t *testing.T) {
	recs := mkRecords(10, 1) // timestamps 0..9
	batches, err := Batches(NewSliceSource(recs), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Windows [0,3) [3,6) [6,9) [9,12) => sizes 3,3,3,1.
	wantSizes := []int{3, 3, 3, 1}
	if len(batches) != len(wantSizes) {
		t.Fatalf("got %d batches, want %d", len(batches), len(wantSizes))
	}
	for i, b := range batches {
		if len(b.Records) != wantSizes[i] {
			t.Errorf("batch %d size = %d, want %d", i, len(b.Records), wantSizes[i])
		}
		if b.Index != i {
			t.Errorf("batch index = %d, want %d", b.Index, i)
		}
		if b.End != b.Start.Add(3) {
			t.Errorf("batch %d window [%v,%v)", i, b.Start, b.End)
		}
		for _, r := range b.Records {
			if r.Timestamp < b.Start || r.Timestamp >= b.End {
				t.Errorf("record %v outside window [%v,%v)", r.Timestamp, b.Start, b.End)
			}
		}
	}
}

func TestBatcherSkipsEmptyWindows(t *testing.T) {
	recs := []Record{
		{Seq: 0, Timestamp: 0, Values: vector.Vector{1}},
		{Seq: 1, Timestamp: 100, Values: vector.Vector{2}},
	}
	batches, err := Batches(NewSliceSource(recs), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	if batches[1].Start != 100 {
		t.Errorf("second window start = %v, want 100", batches[1].Start)
	}
}

func TestBatcherPreservesArrivalOrder(t *testing.T) {
	recs := mkRecords(100, 10)
	batches, err := Batches(NewSliceSource(recs), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	var lastSeq uint64
	first := true
	for _, b := range batches {
		for _, r := range b.Records {
			if !first && r.Seq != lastSeq+1 {
				t.Fatalf("order broken: %d after %d", r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			first = false
			total++
		}
	}
	if total != 100 {
		t.Errorf("batched %d records, want 100", total)
	}
}

func TestBatcherErrors(t *testing.T) {
	if _, err := NewBatcher(NewSliceSource(nil), 0); err == nil {
		t.Error("interval 0 should error")
	}
	b, err := NewBatcher(NewSliceSource(nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty source should EOF, got %v", err)
	}
}

func TestByArrival(t *testing.T) {
	recs := []Record{
		{Seq: 3, Timestamp: 2},
		{Seq: 1, Timestamp: 1},
		{Seq: 2, Timestamp: 1},
		{Seq: 0, Timestamp: 5},
	}
	sort.Slice(recs, func(i, j int) bool { return ByArrival(recs[i], recs[j]) < 0 })
	wantSeq := []uint64{1, 2, 3, 0}
	for i, r := range recs {
		if r.Seq != wantSeq[i] {
			t.Fatalf("position %d seq = %d, want %d", i, r.Seq, wantSeq[i])
		}
	}
	if ByArrival(recs[0], recs[0]) != 0 {
		t.Error("identical records should compare equal")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := make([]Record, 50)
	for i := range recs {
		recs[i] = Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * 0.125),
			Label:     rng.Intn(5) - 1,
			Values:    vector.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Seq != recs[i].Seq || got[i].Timestamp != recs[i].Timestamp ||
			got[i].Label != recs[i].Label || !got[i].Values.Equal(recs[i].Values) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []string{
		"1,2\n",             // too few fields
		"x,0,1,2\n",         // bad seq
		"1,x,1,2\n",         // bad timestamp
		"1,0,x,2\n",         // bad label
		"1,0,1,notafloat\n", // bad feature
	}
	for _, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestRecordCloneAndString(t *testing.T) {
	r := Record{Seq: 1, Timestamp: 2, Label: 3, Values: vector.Vector{4, 5}}
	c := r.Clone()
	c.Values[0] = 99
	if r.Values[0] != 4 {
		t.Error("Clone shares storage")
	}
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// TestBatcherStateRestoreEquivalence cuts a stream with gaps (so empty
// windows and read-ahead pending records are exercised), interrupting at
// every possible batch boundary; the restored batcher must emit exactly
// the batches of the uninterrupted run.
func TestBatcherStateRestoreEquivalence(t *testing.T) {
	// Irregular timestamps: bursts and gaps around the 2s interval.
	var recs []Record
	ts := []float64{0, 0.5, 0.9, 1.1, 3.0, 3.1, 7.2, 7.3, 7.9, 8.1, 15.0, 15.5, 16.2}
	for i, v := range ts {
		recs = append(recs, Record{Seq: uint64(i), Timestamp: vclock.Time(v), Values: vector.Vector{float64(i)}})
	}
	full, err := Batches(NewSliceSource(recs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 4 {
		t.Fatalf("test stream too short: %d batches", len(full))
	}
	for cut := 1; cut < len(full); cut++ {
		b1, err := NewBatcher(NewSliceSource(recs), 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			if _, err := b1.Next(); err != nil {
				t.Fatalf("cut %d: batch %d: %v", cut, i, err)
			}
		}
		st := b1.State()

		// "Restart": fresh source, skip consumed records, restore.
		src := NewSliceSource(recs)
		for i := 0; i < st.Consumed; i++ {
			if _, err := src.Next(); err != nil {
				t.Fatalf("cut %d: skip %d: %v", cut, i, err)
			}
		}
		b2, err := NewBatcher(src, 999) // interval comes from the state
		if err != nil {
			t.Fatal(err)
		}
		if err := b2.Restore(st); err != nil {
			t.Fatal(err)
		}
		for want := cut; ; want++ {
			got, err := b2.Next()
			if errors.Is(err, io.EOF) {
				if want != len(full) {
					t.Fatalf("cut %d: resumed run ended after %d batches, want %d", cut, want, len(full))
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			ref := full[want]
			if got.Index != ref.Index || got.Start != ref.Start || got.End != ref.End || len(got.Records) != len(ref.Records) {
				t.Fatalf("cut %d: batch %d = {i=%d %v..%v n=%d}, want {i=%d %v..%v n=%d}",
					cut, want, got.Index, got.Start, got.End, len(got.Records),
					ref.Index, ref.Start, ref.End, len(ref.Records))
			}
			for j := range got.Records {
				if got.Records[j].Seq != ref.Records[j].Seq {
					t.Fatalf("cut %d: batch %d record %d seq = %d, want %d",
						cut, want, j, got.Records[j].Seq, ref.Records[j].Seq)
				}
			}
		}
	}
}

func TestBatcherRestoreRejectsInvalidState(t *testing.T) {
	b, err := NewBatcher(NewSliceSource(nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(BatcherState{Interval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
	if err := b.Restore(BatcherState{Interval: 1, BatchNo: -1}); err == nil {
		t.Error("negative batch number accepted")
	}
	if err := b.Restore(BatcherState{Interval: 1, Consumed: -2}); err == nil {
		t.Error("negative consumed count accepted")
	}
}
