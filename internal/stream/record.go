// Package stream provides the data-stream substrate: timestamped records,
// pull-based sources, a rate-limited producer that substitutes for the
// paper's Kafka producer, and a batcher that cuts the stream into the
// time-window mini-batches consumed by the DistStream pipeline.
package stream

import (
	"fmt"

	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// Record is one element of a data stream: a d-dimensional point with an
// arrival timestamp, a monotonically increasing sequence number that
// encodes arrival order (used by the order-aware update steps), and an
// optional ground-truth label used only for quality evaluation.
type Record struct {
	// Seq is the global arrival sequence number, assigned by the source.
	Seq uint64
	// Timestamp is the virtual arrival time of the record.
	Timestamp vclock.Time
	// Values holds the feature vector.
	Values vector.Vector
	// Label is the ground-truth cluster label (evaluation only; the
	// clustering algorithms never read it). -1 means unlabeled/noise.
	Label int
}

// Dim returns the dimensionality of the record.
func (r Record) Dim() int { return len(r.Values) }

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := r
	out.Values = r.Values.Clone()
	return out
}

// String renders a compact description for debugging.
func (r Record) String() string {
	return fmt.Sprintf("rec{seq=%d %s label=%d dim=%d}", r.Seq, r.Timestamp, r.Label, len(r.Values))
}

// ByArrival orders records by (Timestamp, Seq): the order-aware local
// update step sorts each micro-cluster's absorbed records with this
// comparator before folding their increments (paper §IV-C1).
func ByArrival(a, b Record) int {
	switch {
	case a.Timestamp < b.Timestamp:
		return -1
	case a.Timestamp > b.Timestamp:
		return 1
	case a.Seq < b.Seq:
		return -1
	case a.Seq > b.Seq:
		return 1
	default:
		return 0
	}
}
