package stream

import (
	"errors"
	"io"

	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// Source is a pull-based, single-pass record stream. Next returns io.EOF
// when the stream is exhausted. Sources are not required to be safe for
// concurrent use; the pipeline pulls from a single goroutine.
type Source interface {
	// Next returns the next record in arrival order.
	Next() (Record, error)
}

// Sized is implemented by sources that know their total length up front.
type Sized interface {
	// Len returns the total number of records the source will emit.
	Len() int
}

// SliceSource replays an in-memory record slice.
type SliceSource struct {
	records []Record
	pos     int
}

var (
	_ Source = (*SliceSource)(nil)
	_ Sized  = (*SliceSource)(nil)
)

// NewSliceSource returns a source over records. The slice is not copied;
// callers must not mutate it while streaming.
func NewSliceSource(records []Record) *SliceSource {
	return &SliceSource{records: records}
}

// Next implements Source.
func (s *SliceSource) Next() (Record, error) {
	if s.pos >= len(s.records) {
		return Record{}, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// Len implements Sized.
func (s *SliceSource) Len() int { return len(s.records) }

// Reset rewinds the source to the beginning for a fresh pass.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a generator function to the Source interface.
type FuncSource struct {
	fn func() (Record, error)
}

var _ Source = (*FuncSource)(nil)

// NewFuncSource wraps fn as a Source.
func NewFuncSource(fn func() (Record, error)) *FuncSource {
	return &FuncSource{fn: fn}
}

// Next implements Source.
func (s *FuncSource) Next() (Record, error) { return s.fn() }

// RepeatSource replays an underlying record set n times, re-stamping
// sequence numbers and timestamps so the replayed copies arrive strictly
// after the originals. This reproduces the paper's construction of the
// large-KDD99 / large-CoverType / large-KDD98 datasets ("instructing Kafka
// to read from the same dataset ten times").
type RepeatSource struct {
	base    []Record
	repeats int
	span    vclock.Duration // timestamp span of one pass
	pass    int
	pos     int
	seq     uint64
}

var (
	_ Source = (*RepeatSource)(nil)
	_ Sized  = (*RepeatSource)(nil)
)

// NewRepeatSource returns a source that emits base repeated `repeats`
// times. It returns an error when base is empty or repeats < 1.
func NewRepeatSource(base []Record, repeats int) (*RepeatSource, error) {
	if len(base) == 0 {
		return nil, errors.New("stream: empty base for RepeatSource")
	}
	if repeats < 1 {
		return nil, errors.New("stream: repeats must be >= 1")
	}
	span := base[len(base)-1].Timestamp - base[0].Timestamp
	// Leave one inter-record gap between passes so timestamps stay
	// strictly increasing.
	if len(base) > 1 {
		span += (base[len(base)-1].Timestamp - base[0].Timestamp) / vclock.Time(len(base)-1)
	} else {
		span = 1
	}
	return &RepeatSource{base: base, repeats: repeats, span: span}, nil
}

// Next implements Source.
func (s *RepeatSource) Next() (Record, error) {
	if s.pass >= s.repeats {
		return Record{}, io.EOF
	}
	r := s.base[s.pos].Clone()
	r.Seq = s.seq
	r.Timestamp = r.Timestamp.Add(vclock.Duration(float64(s.pass)) * s.span)
	s.seq++
	s.pos++
	if s.pos == len(s.base) {
		s.pos = 0
		s.pass++
	}
	return r, nil
}

// Len implements Sized.
func (s *RepeatSource) Len() int { return len(s.base) * s.repeats }

// Drain reads every remaining record from src into a slice. It is mainly
// a test and setup helper.
func Drain(src Source) ([]Record, error) {
	var out []Record
	if sized, ok := src.(Sized); ok {
		out = make([]Record, 0, sized.Len())
	}
	for {
		r, err := src.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// FromVectors builds records from raw vectors with uniform inter-arrival
// spacing (1/rate seconds apart) and labels. labels may be nil, in which
// case every record gets label -1.
func FromVectors(vs []vector.Vector, labels []int, rate float64) ([]Record, error) {
	if rate <= 0 {
		return nil, errors.New("stream: rate must be positive")
	}
	if labels != nil && len(labels) != len(vs) {
		return nil, errors.New("stream: labels length mismatch")
	}
	out := make([]Record, len(vs))
	dt := 1 / rate
	for i, v := range vs {
		label := -1
		if labels != nil {
			label = labels[i]
		}
		out[i] = Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * dt),
			Values:    v,
			Label:     label,
		}
	}
	return out, nil
}
