package stream

import (
	"errors"
	"io"
	"testing"
	"time"
)

func TestBufferedLosslessDrain(t *testing.T) {
	recs := mkRecords(100, 10)
	b := NewBuffered(NewSliceSource(recs), BufferedConfig{Capacity: 8})
	defer b.Close()

	for i := range recs {
		got, err := b.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if got.Seq != recs[i].Seq {
			t.Fatalf("record %d out of order: seq %d", i, got.Seq)
		}
	}
	if _, err := b.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain err = %v, want io.EOF", err)
	}
	st := b.Stats()
	if st.Produced != 100 || st.Consumed != 100 || st.Dropped != 0 || st.Queued != 0 {
		t.Errorf("stats = %+v, want 100 produced/consumed, 0 dropped/queued", st)
	}
}

func TestBufferedDropWhenFull(t *testing.T) {
	recs := mkRecords(1000, 1000)
	b := NewBuffered(NewSliceSource(recs), BufferedConfig{Capacity: 4, DropWhenFull: true})
	defer b.Close()

	// Let the producer race far ahead of a consumer that has not started:
	// with capacity 4 and no consumption, almost everything must drop.
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().Produced < 1000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := b.Stats()
	if st.Produced != 1000 {
		t.Fatalf("producer stalled at %d/1000 in drop mode", st.Produced)
	}
	if st.Dropped == 0 {
		t.Fatal("expected drops with capacity 4 and an idle consumer")
	}
	if st.Queued > 4 {
		t.Errorf("Queued = %d exceeds capacity 4", st.Queued)
	}

	// The survivors still arrive in order, then EOF.
	var consumed uint64
	var lastSeq uint64
	first := true
	for {
		rec, err := b.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !first && rec.Seq <= lastSeq {
			t.Fatalf("out of order after drops: seq %d after %d", rec.Seq, lastSeq)
		}
		first, lastSeq = false, rec.Seq
		consumed++
	}
	st = b.Stats()
	if st.Consumed != consumed || st.Produced != st.Dropped+st.Consumed {
		t.Errorf("counter identity broken: %+v (consumed %d)", st, consumed)
	}
}

func TestBufferedWallRatePacing(t *testing.T) {
	recs := mkRecords(50, 1000)
	start := time.Now()
	b := NewBuffered(NewSliceSource(recs), BufferedConfig{Capacity: 8, WallRate: 500})
	defer b.Close()
	n := 0
	for {
		if _, err := b.Next(); err != nil {
			break
		}
		n++
	}
	elapsed := time.Since(start)
	if n != 50 {
		t.Fatalf("consumed %d records, want 50", n)
	}
	// 50 records at 500/s is 100ms of schedule; allow generous slack on
	// loaded machines but catch an unpaced (instant) pump.
	if elapsed < 90*time.Millisecond {
		t.Errorf("50 records at 500 rec/s took %v, want >= ~100ms", elapsed)
	}
}

func TestBufferedCloseReleasesProducer(t *testing.T) {
	recs := mkRecords(1000, 1000)
	b := NewBuffered(NewSliceSource(recs), BufferedConfig{Capacity: 2})
	// Consume a couple, then abandon the stream.
	if _, err := b.Next(); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	// The remaining buffered records stay readable; then EOF.
	for {
		_, err := b.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// errSource fails after emitting one record.
type errSource struct{ n int }

var errBroken = errors.New("broken pipe")

func (s *errSource) Next() (Record, error) {
	if s.n == 0 {
		s.n++
		return Record{Seq: 1}, nil
	}
	return Record{}, errBroken
}

func TestBufferedPropagatesSourceError(t *testing.T) {
	b := NewBuffered(&errSource{}, BufferedConfig{Capacity: 2})
	defer b.Close()
	if _, err := b.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Next(); !errors.Is(err, errBroken) {
		t.Fatalf("err = %v, want the source's terminal error", err)
	}
}
