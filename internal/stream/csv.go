package stream

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// WriteCSV serializes records as CSV rows of the form
//
//	seq,timestamp,label,f0,f1,...,fd-1
//
// so generated datasets can be persisted and replayed, mirroring how the
// paper's Kafka producer reads datasets from local disk.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	row := make([]string, 0, 16)
	for _, r := range records {
		row = row[:0]
		row = append(row,
			strconv.FormatUint(r.Seq, 10),
			strconv.FormatFloat(float64(r.Timestamp), 'g', -1, 64),
			strconv.Itoa(r.Label),
		)
		for _, v := range r.Values {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("stream: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("stream: flush csv: %w", err)
	}
	return nil
}

// ReadCSV parses records previously written with WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually per row
	var out []Record
	for line := 1; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("stream: read csv line %d: %w", line, err)
		}
		if len(row) < 4 {
			return nil, fmt.Errorf("stream: csv line %d has %d fields, want >= 4", line, len(row))
		}
		seq, err := strconv.ParseUint(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: csv line %d seq: %w", line, err)
		}
		ts, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("stream: csv line %d timestamp: %w", line, err)
		}
		label, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("stream: csv line %d label: %w", line, err)
		}
		values := make(vector.Vector, len(row)-3)
		for i, field := range row[3:] {
			values[i], err = strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: csv line %d feature %d: %w", line, i, err)
			}
		}
		out = append(out, Record{
			Seq:       seq,
			Timestamp: vclock.Time(ts),
			Label:     label,
			Values:    values,
		})
	}
}
