package stream

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// BufferedStats is an atomic snapshot of a Buffered source's counters —
// the ingest-side backpressure signal exported on a serving node's
// /metrics endpoint (lag and drops tell the operator whether the pipeline
// keeps up with the producer).
type BufferedStats struct {
	// Produced counts records pulled from the inner source, including
	// dropped ones.
	Produced uint64
	// Dropped counts records discarded because the buffer was full
	// (drop-when-full mode only).
	Dropped uint64
	// Consumed counts records delivered to the downstream reader.
	Consumed uint64
	// Queued is the current buffer depth: produced - dropped - consumed.
	Queued int
}

// Lag returns the current buffer depth (records produced but not yet
// consumed). A persistently full buffer means the pipeline is the
// bottleneck; a persistently empty one means the producer is.
func (s BufferedStats) Lag() int { return s.Queued }

// BufferedConfig configures a Buffered source.
type BufferedConfig struct {
	// Capacity bounds the in-flight record buffer. Default 1024.
	Capacity int
	// WallRate, when positive, paces production at this many records per
	// wall-clock second — the live-stream stand-in for the paper's Kafka
	// producer rate. Zero produces as fast as the consumer (or the
	// buffer) allows.
	WallRate float64
	// DropWhenFull switches from blocking the producer (lossless
	// backpressure) to discarding the record and counting it in Dropped
	// (the load-shedding behaviour of a lossy transport).
	DropWhenFull bool
}

// Buffered decouples a Source from its consumer through a bounded queue
// filled by a background goroutine, with atomic production/lag/drop
// counters. It models the ingest edge of a serving deployment: the
// producer side advances at its own (optionally wall-clock-paced) rate
// while the pipeline consumes batches, and the counters expose how far
// behind the pipeline is running.
type Buffered struct {
	ch   chan Record
	quit chan struct{}
	once sync.Once

	produced atomic.Uint64
	dropped  atomic.Uint64
	consumed atomic.Uint64

	// err is the terminal error (io.EOF on clean exhaustion), readable
	// only after ch closes.
	err error
}

var _ Source = (*Buffered)(nil)

// NewBuffered starts a background producer pumping src into a bounded
// buffer and returns the consumer end. The caller should Close it when
// abandoning the stream early (e.g. on shutdown) to release the producer
// goroutine; draining to io.EOF releases it too.
func NewBuffered(src Source, cfg BufferedConfig) *Buffered {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	b := &Buffered{
		ch:   make(chan Record, cfg.Capacity),
		quit: make(chan struct{}),
	}
	go b.pump(src, cfg)
	return b
}

func (b *Buffered) pump(src Source, cfg BufferedConfig) {
	defer close(b.ch)
	start := time.Now()
	for {
		rec, err := src.Next()
		if err != nil {
			b.err = err
			return
		}
		n := b.produced.Add(1)
		if cfg.WallRate > 0 {
			// Pace against the absolute schedule (record n is due at
			// start + n/rate) so sleep granularity doesn't accumulate
			// into rate drift.
			due := start.Add(time.Duration(float64(n) / cfg.WallRate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-b.quit:
					b.err = io.EOF
					return
				}
			}
		}
		if cfg.DropWhenFull {
			select {
			case b.ch <- rec:
			case <-b.quit:
				b.err = io.EOF
				return
			default:
				b.dropped.Add(1)
			}
			continue
		}
		select {
		case b.ch <- rec:
		case <-b.quit:
			b.err = io.EOF
			return
		}
	}
}

// Next implements Source, delivering buffered records in production order
// and the inner source's terminal error (io.EOF on exhaustion) after the
// buffer drains.
func (b *Buffered) Next() (Record, error) {
	rec, ok := <-b.ch
	if !ok {
		if b.err == nil {
			return Record{}, io.EOF
		}
		return Record{}, b.err
	}
	b.consumed.Add(1)
	return rec, nil
}

// Close stops the background producer. Records already buffered remain
// readable; after they drain, Next returns io.EOF. Safe to call multiple
// times and concurrently with Next.
func (b *Buffered) Close() {
	b.once.Do(func() { close(b.quit) })
}

// Stats returns the current production/consumption counters. Safe to call
// concurrently with production and consumption.
func (b *Buffered) Stats() BufferedStats {
	produced := b.produced.Load()
	dropped := b.dropped.Load()
	consumed := b.consumed.Load()
	queued := int(produced) - int(dropped) - int(consumed)
	if queued < 0 {
		// Counter reads are not mutually atomic; clamp transient skew.
		queued = 0
	}
	return BufferedStats{
		Produced: produced,
		Dropped:  dropped,
		Consumed: consumed,
		Queued:   queued,
	}
}
