// Package algotest provides a conformance suite for implementations of
// the core.Algorithm API. Every shipped algorithm (clustream, denstream,
// dstream, clustree, simple) runs the same battery: micro-cluster
// contract, snapshot semantics, factory/params round-trip, gob wire
// transport, an end-to-end mini-batch pipeline run, the sequential
// baseline, and a pipeline run over the TCP executor.
package algotest

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"

	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/seq"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// Suite describes the algorithm under test.
type Suite struct {
	// New returns a fresh algorithm instance.
	New func() core.Algorithm
	// Register installs the factory into a registry.
	Register func(*core.AlgorithmRegistry) error
	// RegisterWire registers gob types; may be called multiple times.
	RegisterWire func()
	// Dim is the dimensionality the suite streams at (>= 2).
	Dim int
	// SeparatesBlobs asserts that the offline clustering puts the two
	// test blobs in different macro-clusters. Disable for algorithms
	// whose offline output needs more tuning than the generic stream
	// provides.
	SeparatesBlobs bool
}

// TwoBlobStream builds the suite's standard workload: two well-separated
// Gaussian-free blobs with alternating arrivals.
func TwoBlobStream(n, dim int, rate float64) []stream.Record {
	recs := make([]stream.Record, n)
	for i := range recs {
		v := vector.New(dim)
		jitter := 0.1 * float64(i%5)
		if i%2 == 0 {
			v[0], v[1] = 0+jitter, 0
		} else {
			v[0], v[1] = 20+jitter, 20
		}
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) / rate),
			Values:    v,
			Label:     i % 2,
		}
	}
	return recs
}

// Run executes the conformance battery.
func Run(t *testing.T, s Suite) {
	t.Helper()
	if s.Dim < 2 {
		t.Fatal("algotest: Dim must be >= 2")
	}
	t.Run("MicroClusterContract", func(t *testing.T) { microClusterContract(t, s) })
	t.Run("SnapshotContract", func(t *testing.T) { snapshotContract(t, s) })
	t.Run("FactoryRoundTrip", func(t *testing.T) { factoryRoundTrip(t, s) })
	t.Run("GobRoundTrip", func(t *testing.T) { gobRoundTrip(t, s) })
	t.Run("PipelineRun", func(t *testing.T) { pipelineRun(t, s) })
	t.Run("SequentialRun", func(t *testing.T) { sequentialRun(t, s) })
	t.Run("PipelineOverTCP", func(t *testing.T) { pipelineOverTCP(t, s) })
	t.Run("OrderedMatchesAcrossParallelism", func(t *testing.T) { parallelismInvariance(t, s) })
	t.Run("StateCodecRoundTrip", func(t *testing.T) { stateCodecRoundTrip(t, s) })
}

// stateCodecRoundTrip checks the checkpoint state codec: a model
// populated by a real pipeline run must survive EncodeState/DecodeState
// deep-equal, and corrupt input must yield errors, never panics.
func stateCodecRoundTrip(t *testing.T, s Suite) {
	pl := NewPipeline(t, s, 2, core.OrderAware, 1)
	if _, err := pl.Run(stream.NewSliceSource(TwoBlobStream(600, s.Dim, 100))); err != nil {
		t.Fatal(err)
	}
	algo := s.New()
	codec, ok := algo.(core.StateCodec)
	if !ok {
		t.Fatalf("%s does not implement core.StateCodec", algo.Name())
	}
	model := pl.Model()
	data, err := codec.EncodeState(model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(model.List(), back.List()) {
		t.Error("micro-clusters changed across the codec round trip")
	}
	if back.Now() != model.Now() || !reflect.DeepEqual(back.IDs(), model.IDs()) {
		t.Error("model clock or id order changed across the codec round trip")
	}
	// A restored model must keep allocating ids above every live one.
	id := back.Add(algo.Create(rec(9999, back.Now(), s.Dim, 5, 5)))
	if back.Get(id) == nil {
		t.Error("restored model cannot admit a new micro-cluster")
	}
	for name, bad := range map[string][]byte{
		"nil":       nil,
		"garbage":   []byte("not a model state"),
		"truncated": data[:len(data)/2],
	} {
		if _, err := codec.DecodeState(bad); err == nil {
			t.Errorf("%s input decoded without error", name)
		}
	}
}

func rec(seq uint64, ts vclock.Time, dim int, x0, x1 float64) stream.Record {
	v := vector.New(dim)
	v[0], v[1] = x0, x1
	return stream.Record{Seq: seq, Timestamp: ts, Values: v}
}

func microClusterContract(t *testing.T, s Suite) {
	algo := s.New()
	r0 := rec(0, 1, s.Dim, 1, 1)
	mc := algo.Create(r0)
	if mc.Weight() <= 0 {
		t.Errorf("new MC weight = %v, want > 0", mc.Weight())
	}
	if mc.CreatedAt() != 1 || mc.LastUpdated() != 1 {
		t.Errorf("timestamps: created=%v updated=%v, want 1", mc.CreatedAt(), mc.LastUpdated())
	}
	mc.SetID(42)
	if mc.ID() != 42 {
		t.Errorf("ID = %d after SetID(42)", mc.ID())
	}
	if got := mc.Center(); len(got) != s.Dim {
		t.Fatalf("center dim = %d, want %d", len(got), s.Dim)
	}
	// Clone independence.
	clone := mc.Clone()
	w0 := mc.Weight()
	algo.Update(clone, rec(1, 2, s.Dim, 1.1, 1))
	if mc.Weight() != w0 {
		t.Error("updating a clone mutated the original")
	}
	if clone.Weight() <= w0 {
		t.Errorf("update did not grow weight: %v -> %v", w0, clone.Weight())
	}
	if clone.LastUpdated() != 2 {
		t.Errorf("LastUpdated = %v after update at t=2", clone.LastUpdated())
	}
	if clone.ID() != 42 {
		t.Error("clone lost id")
	}
	// Center tracks absorbed mass.
	c := clone.Center()
	if c[0] <= 0.9 || c[0] >= 1.2 {
		t.Errorf("center[0] = %v, want within absorbed range", c[0])
	}
	// AbsorbIntoNew accepts a colocated record and rejects a distant one.
	fresh := algo.Create(rec(5, 3, s.Dim, 0, 0))
	if !algo.AbsorbIntoNew(fresh, rec(6, 3.1, s.Dim, 0.01, 0.01)) {
		t.Error("AbsorbIntoNew rejected a colocated record")
	}
	if algo.AbsorbIntoNew(fresh, rec(7, 3.2, s.Dim, 500, 500)) {
		t.Error("AbsorbIntoNew accepted a distant record")
	}
}

func snapshotContract(t *testing.T, s Suite) {
	algo := s.New()
	// Empty snapshot.
	empty := algo.NewSnapshot(nil)
	if _, _, ok := empty.Nearest(rec(0, 0, s.Dim, 0, 0)); ok {
		t.Error("empty snapshot returned ok")
	}
	if empty.Len() != 0 {
		t.Errorf("empty Len = %d", empty.Len())
	}
	// Populated snapshot.
	mcs, err := algo.Init(TwoBlobStream(200, s.Dim, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(mcs) < 2 {
		t.Fatalf("init produced %d micro-clusters, want >= 2", len(mcs))
	}
	for i, mc := range mcs {
		mc.SetID(uint64(i + 1))
	}
	snap := algo.NewSnapshot(mcs)
	if snap.Len() != len(mcs) {
		t.Errorf("snapshot Len = %d, want %d", snap.Len(), len(mcs))
	}
	if snap.Get(1) == nil {
		t.Error("Get(1) = nil")
	}
	if snap.Get(9999) != nil {
		t.Error("Get(9999) != nil")
	}
	// A record at a blob must be absorbable by a micro-cluster near it.
	id, absorbable, ok := snap.Nearest(rec(999, 3, s.Dim, 0.05, 0))
	if !ok {
		t.Fatal("Nearest found nothing")
	}
	if !absorbable {
		t.Error("record at blob center not absorbable")
	}
	near := snap.Get(id)
	if near == nil {
		t.Fatal("Nearest returned unknown id")
	}
	if d := vector.Distance(near.Center(), vector.New(s.Dim)); d > 10 {
		t.Errorf("nearest MC is %v away from the blob", d)
	}
	// A far-away record must not be absorbable.
	if _, absorbable, ok := snap.Nearest(rec(1000, 3, s.Dim, 5000, 5000)); ok && absorbable {
		t.Error("distant record reported absorbable")
	}
}

func factoryRoundTrip(t *testing.T, s Suite) {
	reg := core.NewAlgorithmRegistry()
	if err := s.Register(reg); err != nil {
		t.Fatal(err)
	}
	orig := s.New()
	params := orig.Params()
	if params.Name == "" {
		t.Fatal("Params().Name empty")
	}
	rebuilt, err := reg.New(params)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Name() != orig.Name() {
		t.Errorf("rebuilt name %q != %q", rebuilt.Name(), orig.Name())
	}
	// The rebuilt algorithm must expose identical params (full fidelity).
	p2 := rebuilt.Params()
	for k, v := range params.Floats {
		if p2.Float(k, -12345) != v {
			t.Errorf("float param %q lost: %v vs %v", k, p2.Float(k, -12345), v)
		}
	}
	for k, v := range params.Ints {
		if p2.Int(k, -12345) != v {
			t.Errorf("int param %q lost: %v vs %v", k, p2.Int(k, -12345), v)
		}
	}
	// And it must behave: create + update.
	mc := rebuilt.Create(rec(0, 1, s.Dim, 1, 1))
	rebuilt.Update(mc, rec(1, 2, s.Dim, 1, 1))
	if mc.Weight() <= 1 {
		t.Error("rebuilt algorithm update broken")
	}
}

func gobRoundTrip(t *testing.T, s Suite) {
	s.RegisterWire()
	core.RegisterWireTypes()
	algo := s.New()
	mcs, err := algo.Init(TwoBlobStream(100, s.Dim, 100))
	if err != nil {
		t.Fatal(err)
	}
	for i, mc := range mcs {
		mc.SetID(uint64(i + 1))
	}
	snap := algo.NewSnapshot(mcs)

	// Snapshot through gob as an interface value (what broadcast does).
	var buf bytes.Buffer
	type envelope struct{ V any }
	if err := gob.NewEncoder(&buf).Encode(envelope{V: snap}); err != nil {
		t.Fatalf("encode snapshot: %v", err)
	}
	var env envelope
	if err := gob.NewDecoder(&buf).Decode(&env); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	decoded, ok := env.V.(core.Snapshot)
	if !ok {
		t.Fatalf("decoded %T is not a Snapshot", env.V)
	}
	if decoded.Len() != snap.Len() {
		t.Errorf("decoded Len = %d, want %d", decoded.Len(), snap.Len())
	}
	probe := rec(7, 5, s.Dim, 0.05, 0)
	id1, abs1, ok1 := snap.Nearest(probe)
	id2, abs2, ok2 := decoded.Nearest(probe)
	if id1 != id2 || abs1 != abs2 || ok1 != ok2 {
		t.Errorf("decoded snapshot disagrees: (%d,%v,%v) vs (%d,%v,%v)",
			id1, abs1, ok1, id2, abs2, ok2)
	}
	// Micro-cluster through gob inside an Update (what the shuffle does).
	buf.Reset()
	upd := core.Update{Kind: core.KindUpdated, MC: mcs[0], Absorbed: 1, OrderTime: 1}
	if err := gob.NewEncoder(&buf).Encode(envelope{V: upd}); err != nil {
		t.Fatalf("encode update: %v", err)
	}
	var env2 envelope
	if err := gob.NewDecoder(&buf).Decode(&env2); err != nil {
		t.Fatalf("decode update: %v", err)
	}
	u2, ok := env2.V.(core.Update)
	if !ok {
		t.Fatalf("decoded %T is not an Update", env2.V)
	}
	if u2.MC.ID() != mcs[0].ID() || u2.MC.Weight() != mcs[0].Weight() {
		t.Error("micro-cluster state lost in transit")
	}
}

// NewPipeline wires a full local pipeline for the suite's algorithm.
func NewPipeline(t *testing.T, s Suite, p int, order core.OrderMode, batch vclock.Duration) *core.Pipeline {
	t.Helper()
	algos := core.NewAlgorithmRegistry()
	if err := s.Register(algos); err != nil {
		t.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	exec, err := mbsp.NewLocalExecutor(mbsp.LocalConfig{Parallelism: p, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     s.New(),
		Engine:        eng,
		BatchInterval: batch,
		Order:         order,
		InitRecords:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func pipelineRun(t *testing.T, s Suite) {
	pl := NewPipeline(t, s, 4, core.OrderAware, 1)
	recs := TwoBlobStream(1200, s.Dim, 100)
	stats, err := pl.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1100 {
		t.Errorf("Records = %d, want 1100", stats.Records)
	}
	if pl.Model().Len() == 0 {
		t.Fatal("empty model after run")
	}
	clustering, err := pl.Offline()
	if err != nil {
		t.Fatal(err)
	}
	if s.SeparatesBlobs {
		a := clustering.Assign(blobPoint(s.Dim, 0))
		b := clustering.Assign(blobPoint(s.Dim, 20))
		if a < 0 || b < 0 || a == b {
			t.Errorf("offline failed to separate blobs: %d vs %d", a, b)
		}
	}
}

func blobPoint(dim int, base float64) vector.Vector {
	v := vector.New(dim)
	v[0], v[1] = base, base
	return v
}

func sequentialRun(t *testing.T, s Suite) {
	runner, err := seq.NewRunner(seq.Config{Algorithm: s.New(), InitRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := runner.Run(stream.NewSliceSource(TwoBlobStream(800, s.Dim, 100)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 700 {
		t.Errorf("Records = %d, want 700", stats.Records)
	}
	if runner.Model().Len() == 0 {
		t.Fatal("empty model after sequential run")
	}
	if _, err := runner.Offline(); err != nil {
		t.Fatal(err)
	}
}

func pipelineOverTCP(t *testing.T, s Suite) {
	s.RegisterWire()
	core.RegisterWireTypes()
	algos := core.NewAlgorithmRegistry()
	if err := s.Register(algos); err != nil {
		t.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	workers, addrs, err := rpcexec.StartLocalCluster(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	exec, err := rpcexec.Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     s.New(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(TwoBlobStream(500, s.Dim, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 400 {
		t.Errorf("Records = %d, want 400", stats.Records)
	}
	if pl.Model().Len() == 0 {
		t.Error("empty model after TCP run")
	}
}

// parallelismInvariance checks the order-aware guarantee: p=1 and p=8
// produce closely matching models. Exact equality is not required — the
// outlier pre-merge granularity legitimately depends on the number of
// outlier groups (one per task, §V-C) — but record mass and model size
// must agree tightly, as the paper's "comparable quality" claim demands.
func parallelismInvariance(t *testing.T, s Suite) {
	run := func(p int) (int, float64) {
		pl := NewPipeline(t, s, p, core.OrderAware, 2)
		if _, err := pl.Run(stream.NewSliceSource(TwoBlobStream(800, s.Dim, 100))); err != nil {
			t.Fatal(err)
		}
		return pl.Model().Len(), pl.Model().TotalWeight()
	}
	n1, w1 := run(1)
	n8, w8 := run(8)
	if n8 < n1-3 || n8 > n1+3 {
		t.Errorf("model size diverged across parallelism: %d vs %d", n1, n8)
	}
	if diff := math.Abs(w1-w8) / (w1 + 1e-12); diff > 5e-3 {
		t.Errorf("model weight diverged across parallelism: %v vs %v", w1, w8)
	}
}
