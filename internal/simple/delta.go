package simple

import (
	"fmt"
	"slices"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Delta broadcast support. The simple algorithm decays every
// micro-cluster in its global update, so DiffState's size guard reports
// ok=false on active streams and the executor keeps shipping full
// snapshots; the capability exists for uniformity and the idle corner.

// ListMCs implements core.MCLister for the worker-side delta apply.
func (s *Snapshot) ListMCs() []core.MicroCluster { return s.MCs }

// DiffState implements core.SnapshotDiffer.
func (a *Algorithm) DiffState(old, new []core.MicroCluster) (*core.SnapshotDelta, bool) {
	d, ok := core.DiffMCLists(old, new, mcEqual)
	if !ok {
		return nil, false
	}
	d.Params = a.Params()
	return d, true
}

// ApplyDelta implements core.SnapshotDiffer.
func (a *Algorithm) ApplyDelta(old []core.MicroCluster, d *core.SnapshotDelta) ([]core.MicroCluster, error) {
	for i, mc := range d.Upserts {
		if _, ok := mc.(*MC); !ok {
			return nil, fmt.Errorf("simple: delta upsert %d is %T, want *MC", i, mc)
		}
	}
	return core.ApplyMCDelta(old, d)
}

// mcEqual is bit-exact equality over every MC field.
func mcEqual(a, b core.MicroCluster) bool {
	x, ok := a.(*MC)
	if !ok {
		return false
	}
	y, ok := b.(*MC)
	if !ok {
		return false
	}
	return x.Id == y.Id &&
		core.BitsEqual(x.W, y.W) &&
		core.BitsEqual(float64(x.Created), float64(y.Created)) &&
		core.BitsEqual(float64(x.Updated), float64(y.Updated)) &&
		core.VecBitsEqual(x.Sum, y.Sum) &&
		slices.Equal(x.Log, y.Log)
}

// encMC / decMC are the columnar wire codec for *MC.
func encMC(e *wire.Enc, mc core.MicroCluster) bool {
	m, ok := mc.(*MC)
	if !ok {
		return false
	}
	e.Uint(m.Id)
	e.F64(m.W)
	e.F64(float64(m.Created))
	e.F64(float64(m.Updated))
	e.F64s(m.Sum)
	e.Uints(m.Log)
	return true
}

func decMC(d *wire.Dec) core.MicroCluster {
	m := &MC{}
	m.Id = d.Uint()
	m.W = d.F64()
	m.Created = vclock.Time(d.F64())
	m.Updated = vclock.Time(d.F64())
	m.Sum = vector.Vector(d.F64s())
	m.Log = d.Uints()
	return m
}
