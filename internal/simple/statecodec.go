package simple

import (
	"fmt"

	"diststream/internal/core"
)

// EncodeState implements core.StateCodec: it serializes the full model
// for the checkpoint subsystem, reusing the gob wire types that already
// ship model snapshots to TCP workers.
func (a *Algorithm) EncodeState(m *core.Model) ([]byte, error) {
	RegisterWireTypes()
	return m.EncodeState()
}

// DecodeState implements core.StateCodec. It rejects state written by a
// different algorithm (wrong concrete micro-cluster type) and returns an
// error — never a panic — on corrupt input.
func (a *Algorithm) DecodeState(data []byte) (*core.Model, error) {
	RegisterWireTypes()
	m, err := core.DecodeModelState(data)
	if err != nil {
		return nil, err
	}
	for _, mc := range m.List() {
		if _, ok := mc.(*MC); !ok {
			return nil, fmt.Errorf("%s: checkpoint micro-cluster is %T, not a %s micro-cluster", Name, mc, Name)
		}
	}
	return m, nil
}

var _ core.StateCodec = (*Algorithm)(nil)
