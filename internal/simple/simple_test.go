package simple

import (
	"math"
	"testing"

	"diststream/internal/algotest"
	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

func TestConformance(t *testing.T) {
	algotest.Run(t, algotest.Suite{
		New:          func() core.Algorithm { return New(Config{Radius: 3}) },
		Register:     Register,
		RegisterWire: RegisterWireTypes,
		Dim:          4,
		// simple's offline puts every MC in its own macro, which still
		// separates the blobs.
		SeparatesBlobs: true,
	})
}

func rec(seq uint64, ts vclock.Time, vals ...float64) stream.Record {
	return stream.Record{Seq: seq, Timestamp: ts, Values: vals}
}

func TestDecaySemantics(t *testing.T) {
	a := New(Config{Beta: 2}) // decay 2^-dt
	mc := a.Create(rec(0, 0, 4, 0)).(*MC)
	a.Update(mc, rec(1, 1, 1, 0))
	// Old mass halves: W = 0.5 + 1 = 1.5; Sum = 4*0.5 + 1 = 3.
	if math.Abs(mc.W-1.5) > 1e-12 || math.Abs(mc.Sum[0]-3) > 1e-12 {
		t.Errorf("W=%v Sum=%v", mc.W, mc.Sum[0])
	}
}

func TestOrderSensitivity(t *testing.T) {
	// The §IV-C1 impact inequality made concrete: processing {old, new}
	// in arrival order leaves more relative weight on the *newer* record
	// than the reverse order, where the stale record's |Δt| decay erodes
	// the fresh increment.
	a := New(Config{Beta: 2})
	r1 := rec(1, 1, 10, 0) // older, at coordinate 10
	r2 := rec(2, 2, 0, 0)  // newer, at the origin

	ordered := a.Create(rec(0, 0, 0, 0)).(*MC)
	a.Update(ordered, r1)
	a.Update(ordered, r2)

	reversed := a.Create(rec(0, 0, 0, 0)).(*MC)
	a.Update(reversed, r2)
	a.Update(reversed, r1) // |Δt| decay hits the newer increment

	// The newer record sits at 0: a center biased toward stale data is
	// larger. Reverse processing under-weights r2, dragging the center
	// toward the old coordinate.
	co, cr := ordered.Center()[0], reversed.Center()[0]
	if !(co < cr) {
		t.Errorf("ordered center %v should be less stale-biased than reversed %v", co, cr)
	}
	// And reverse processing over-decays total mass.
	if !(reversed.W < ordered.W) {
		t.Errorf("reversed W %v should be below ordered %v", reversed.W, ordered.W)
	}
}

func TestTrackUpdatesOff(t *testing.T) {
	a := New(Config{})
	mc := a.Create(rec(0, 0, 1, 1)).(*MC)
	a.Update(mc, rec(1, 1, 1, 1))
	if mc.Log != nil {
		t.Error("Log populated without TrackUpdates")
	}
}

func TestGlobalUpdateDeletesFaded(t *testing.T) {
	a := New(Config{Beta: 2, MinWeight: 0.1})
	model := core.NewModel()
	model.Add(a.Create(rec(0, 0, 1, 1)))
	if err := a.GlobalUpdate(model, nil, 10); err != nil {
		t.Fatal(err)
	}
	if model.Len() != 0 {
		t.Error("faded MC survived")
	}
}

func TestParamsRoundTripTrackUpdates(t *testing.T) {
	reg := core.NewAlgorithmRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	a := New(Config{TrackUpdates: true})
	rebuilt, err := reg.New(a.Params())
	if err != nil {
		t.Fatal(err)
	}
	mc := rebuilt.Create(rec(0, 0, 1, 1)).(*MC)
	if len(mc.Log) != 1 {
		t.Error("TrackUpdates lost in params round-trip")
	}
}
