// Package simple provides a minimal reference implementation of the
// DistStream Algorithm API: decaying-centroid micro-clusters with a fixed
// absorb radius. It exists to document the four developer APIs (paper
// §VI) with the least algorithmic noise, and serves as the baseline for
// tests and the custom-algorithm example. For real stream clustering use
// clustream, denstream, dstream, or clustree.
package simple

import (
	"encoding/gob"
	"fmt"
	"math"

	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Name is the registry name of this algorithm.
const Name = "simple"

// MC is the micro-cluster: a decayed weighted sum with a decayed weight.
// Every field is exported so micro-clusters travel over gob.
type MC struct {
	Id      uint64
	Sum     vector.Vector // decayed weighted coordinate sum
	W       float64       // decayed record mass
	Created vclock.Time
	Updated vclock.Time
	// Log, when update tracking is enabled, records absorbed sequence
	// numbers in processing order (tests use it to verify ordering).
	Log []uint64
}

var _ core.MicroCluster = (*MC)(nil)

// ID implements core.MicroCluster.
func (m *MC) ID() uint64 { return m.Id }

// SetID implements core.MicroCluster.
func (m *MC) SetID(id uint64) { m.Id = id }

// Weight implements core.MicroCluster.
func (m *MC) Weight() float64 { return m.W }

// CreatedAt implements core.MicroCluster.
func (m *MC) CreatedAt() vclock.Time { return m.Created }

// LastUpdated implements core.MicroCluster.
func (m *MC) LastUpdated() vclock.Time { return m.Updated }

// Center implements core.MicroCluster.
func (m *MC) Center() vector.Vector {
	if m.W == 0 {
		return m.Sum.Clone()
	}
	return m.Sum.Clone().Scale(1 / m.W)
}

// Clone implements core.MicroCluster.
func (m *MC) Clone() core.MicroCluster {
	out := *m
	out.Sum = m.Sum.Clone()
	out.Log = append([]uint64(nil), m.Log...)
	return &out
}

// Config parameterizes the algorithm.
type Config struct {
	// Radius is the absorb boundary around a micro-cluster center.
	Radius float64
	// Beta > 1 is the decay base: increments fade as Beta^-dt.
	Beta float64
	// MinWeight deletes micro-clusters whose decayed weight falls below.
	MinWeight float64
	// TrackUpdates records absorbed sequence numbers on each MC.
	TrackUpdates bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Radius <= 0 {
		out.Radius = 2
	}
	if out.Beta <= 1 {
		out.Beta = 1.2
	}
	if out.MinWeight <= 0 {
		out.MinWeight = 0.05
	}
	return out
}

// Algorithm implements core.Algorithm.
type Algorithm struct {
	cfg Config
}

var _ core.Algorithm = (*Algorithm)(nil)

// New returns the algorithm with defaults applied.
func New(cfg Config) *Algorithm {
	return &Algorithm{cfg: cfg.withDefaults()}
}

// Register adds the factory to an algorithm registry.
func Register(reg *core.AlgorithmRegistry) error {
	return reg.Register(Name, func(p core.Params) (core.Algorithm, error) {
		return New(Config{
			Radius:       p.Float("radius", 0),
			Beta:         p.Float("beta", 0),
			MinWeight:    p.Float("minWeight", 0),
			TrackUpdates: p.Int("trackUpdates", 0) == 1,
		}), nil
	})
}

// RegisterWireTypes registers this algorithm's gob payloads.
func RegisterWireTypes() {
	gob.Register(&MC{})
	gob.Register(&Snapshot{})
	wire.RegisterMCCodec(Name, &MC{}, encMC, decMC)
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// Params implements core.Algorithm.
func (a *Algorithm) Params() core.Params {
	track := 0
	if a.cfg.TrackUpdates {
		track = 1
	}
	return core.Params{
		Name: Name,
		Floats: map[string]float64{
			"radius":    a.cfg.Radius,
			"beta":      a.cfg.Beta,
			"minWeight": a.cfg.MinWeight,
		},
		Ints: map[string]int{"trackUpdates": track},
	}
}

// Init implements core.Algorithm: greedy leader clustering over the
// warm-up sample.
func (a *Algorithm) Init(records []stream.Record) ([]core.MicroCluster, error) {
	var out []core.MicroCluster
	for _, rec := range records {
		absorbed := false
		for _, mc := range out {
			if vector.Distance(rec.Values, mc.Center()) <= a.cfg.Radius {
				a.Update(mc, rec)
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, a.Create(rec))
		}
	}
	return out, nil
}

// NewSnapshot implements core.Algorithm with a flat center index.
func (a *Algorithm) NewSnapshot(mcs []core.MicroCluster) core.Snapshot {
	return &Snapshot{MCs: mcs, Index: core.BuildFlatIndex(mcs), Radius: a.cfg.Radius}
}

// Update implements core.Algorithm: q' = λq + Δx with λ = Beta^-|dt|,
// dt the gap to the previously updated record. The absolute gap matches
// the §IV-C1 naive-update model (λ ≤ 1 always): out-of-order records
// under the unordered baseline decay newer content, so recent records
// lose the recency preference the order-aware mechanism preserves.
func (a *Algorithm) Update(mc core.MicroCluster, rec stream.Record) {
	m := mc.(*MC)
	dt := math.Abs(float64(rec.Timestamp - m.Updated))
	lambda := math.Pow(a.cfg.Beta, -dt)
	m.Sum.Scale(lambda).Add(rec.Values)
	m.W = m.W*lambda + 1
	m.Updated = rec.Timestamp
	if a.cfg.TrackUpdates {
		m.Log = append(m.Log, rec.Seq)
	}
}

// Create implements core.Algorithm.
func (a *Algorithm) Create(rec stream.Record) core.MicroCluster {
	m := &MC{
		Sum:     rec.Values.Clone(),
		W:       1,
		Created: rec.Timestamp,
		Updated: rec.Timestamp,
	}
	if a.cfg.TrackUpdates {
		m.Log = []uint64{rec.Seq}
	}
	return m
}

// AbsorbIntoNew implements core.Algorithm.
func (a *Algorithm) AbsorbIntoNew(mc core.MicroCluster, rec stream.Record) bool {
	return vector.Distance(rec.Values, mc.Center()) <= a.cfg.Radius
}

// GlobalUpdate implements core.Algorithm: replace updated micro-clusters,
// admit created ones, decay the untouched, and delete faded ones.
func (a *Algorithm) GlobalUpdate(model *core.Model, updates []core.Update, now vclock.Time) error {
	touched := make(map[uint64]bool, len(updates))
	for _, u := range updates {
		switch u.Kind {
		case core.KindUpdated:
			if model.Get(u.MC.ID()) == nil {
				model.Add(u.MC)
			} else if err := model.Replace(u.MC); err != nil {
				return err
			}
		case core.KindCreated:
			model.Add(u.MC)
		default:
			return fmt.Errorf("simple: unknown update kind %d", u.Kind)
		}
		touched[u.MC.ID()] = true
	}
	// Periodic decay/prune sweep; batch calls always sweep, the
	// sequential runner sweeps once per sweepInterval of virtual time.
	if !sweepDue(model, now, len(updates)) {
		return nil
	}
	for _, mc := range model.List() {
		m := mc.(*MC)
		if !touched[m.Id] {
			if dt := float64(now - m.Updated); dt > 0 {
				lambda := math.Pow(a.cfg.Beta, -dt)
				m.Sum.Scale(lambda)
				m.W *= lambda
				// Advance the decay horizon so the next global update
				// does not decay the same interval again.
				m.Updated = now
			}
		}
		if m.W < a.cfg.MinWeight {
			model.Remove(m.Id)
		}
	}
	return nil
}

// sweepInterval is the virtual-time period of the maintenance sweep.
const sweepInterval = 1.0

// sweepDue reports whether the periodic sweep should run now, updating
// the model's bookkeeping when it does.
func sweepDue(model *core.Model, now vclock.Time, updates int) bool {
	last, ok := model.MetaFloat("simple.lastSweep")
	if updates <= 1 && ok && float64(now)-last < sweepInterval {
		return false
	}
	model.SetMetaFloat("simple.lastSweep", float64(now))
	return true
}

// Offline implements core.Algorithm: each micro-cluster becomes its own
// macro-cluster (this reference algorithm does not group).
func (a *Algorithm) Offline(model *core.Model) (*core.Clustering, error) {
	mcs := model.List()
	centers := make([]vector.Vector, len(mcs))
	labels := make([]int, len(mcs))
	macros := make([]core.MacroCluster, len(mcs))
	for i, mc := range mcs {
		centers[i] = mc.Center()
		labels[i] = i
		macros[i] = core.MacroCluster{
			Label:   i,
			Members: []uint64{mc.ID()},
			Center:  mc.Center(),
			Weight:  mc.Weight(),
		}
	}
	clustering := core.NewClustering(macros, centers, labels)
	clustering.SetNoiseCutoff(2 * a.cfg.Radius)
	return clustering, nil
}

// Snapshot is the search structure: a flat center index plus the fixed
// absorb radius.
type Snapshot struct {
	MCs    []core.MicroCluster
	Index  core.FlatIndex
	Radius float64
}

var _ core.Snapshot = (*Snapshot)(nil)

// Nearest implements core.Snapshot via the flat one-vs-many kernel. The
// kernel minimizes the exact squared distance; √ is strictly monotone,
// so the winner matches the previous per-MC Distance scan, and the
// absorb test compares √d against the radius exactly as before — without
// the per-comparison Center() clone the old scan paid.
func (s *Snapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	best, bestD := s.Index.Nearest(rec.Values)
	if best < 0 {
		return 0, false, false
	}
	return s.Index.IDs[best], math.Sqrt(bestD) <= s.Radius, true
}

// NearestAll implements core.BatchNearester: the blocked kernel plus the
// same global-radius test as Nearest. Bit-identical to the per-record
// path.
func (s *Snapshot) NearestAll(recs []stream.Record, ids []uint64, absorb, found []bool) ([]uint64, []bool, []bool) {
	ids, absorb, found = core.GrowNearestOut(len(recs), ids, absorb, found)
	nr := core.GetNearestRows()
	nr.Rows, nr.Dists = s.Index.NearestAll(recs, nr.Rows, nr.Dists)
	for i, row := range nr.Rows {
		if row < 0 {
			ids[i], absorb[i], found[i] = 0, false, false
			continue
		}
		ids[i] = s.Index.IDs[row]
		absorb[i] = math.Sqrt(nr.Dists[i]) <= s.Radius
		found[i] = true
	}
	nr.Release()
	return ids, absorb, found
}

// Get implements core.Snapshot in O(1) via the id → row map.
func (s *Snapshot) Get(id uint64) core.MicroCluster {
	if i, ok := s.Index.IndexOf(id); ok {
		return s.MCs[i]
	}
	return nil
}

// Len implements core.Snapshot.
func (s *Snapshot) Len() int { return len(s.MCs) }
