package cmm

import (
	"errors"

	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// Window is the sliding evaluation window: it retains the most recent
// records and scores a clustering against them, the way the paper
// computes "CMM values at the end of each batch using the clustering
// results generated offline".
type Window struct {
	capacity int
	buf      []stream.Record
	pos      int
	full     bool
}

// NewWindow returns a window retaining up to capacity records.
func NewWindow(capacity int) (*Window, error) {
	if capacity <= 0 {
		return nil, errors.New("cmm: window capacity must be positive")
	}
	return &Window{capacity: capacity, buf: make([]stream.Record, capacity)}, nil
}

// Push appends a record, evicting the oldest when full.
func (w *Window) Push(rec stream.Record) {
	w.buf[w.pos] = rec
	w.pos = (w.pos + 1) % w.capacity
	if w.pos == 0 {
		w.full = true
	}
}

// Len returns the number of retained records.
func (w *Window) Len() int {
	if w.full {
		return w.capacity
	}
	return w.pos
}

// Records returns the retained records in arrival order.
func (w *Window) Records() []stream.Record {
	if !w.full {
		out := make([]stream.Record, w.pos)
		copy(out, w.buf[:w.pos])
		return out
	}
	out := make([]stream.Record, 0, w.capacity)
	out = append(out, w.buf[w.pos:]...)
	out = append(out, w.buf[:w.pos]...)
	return out
}

// Score evaluates a clustering assignment function over the window
// (typically rec → Clustering.Assign(rec.Values)).
func (w *Window) Score(assign func(rec stream.Record) int, now vclock.Time, cfg Config) (Result, error) {
	records := w.Records()
	if len(records) == 0 {
		return Result{}, errors.New("cmm: empty window")
	}
	points := make([]Point, len(records))
	for i, rec := range records {
		points[i] = Point{
			Values:   rec.Values,
			Class:    rec.Label,
			Assigned: assign(rec),
			Time:     rec.Timestamp,
		}
	}
	return Evaluate(points, now, cfg)
}
