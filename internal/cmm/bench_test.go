package cmm

import (
	"math/rand"
	"testing"

	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// BenchmarkEvaluate measures one CMM evaluation over a 600-point window —
// the per-batch cost of the Figure 6 quality loop.
func BenchmarkEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := make([]Point, 600)
	for i := range points {
		class := i % 5
		v := vector.New(16)
		v[0] = float64(class * 10)
		for d := 1; d < len(v); d++ {
			v[d] = rng.NormFloat64()
		}
		assigned := class
		if i%17 == 0 {
			assigned = (class + 1) % 5 // some misplaced records
		}
		points[i] = Point{Values: v, Class: class, Assigned: assigned, Time: vclock.Time(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(points, 600, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
