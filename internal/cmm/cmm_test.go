package cmm

import (
	"math"
	"math/rand"
	"testing"

	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// mkBlobs builds n points per class at the given 1-D anchors, assigned by
// the given function.
func mkBlobs(anchors []float64, n int, assign func(class, i int) int) []Point {
	rng := rand.New(rand.NewSource(1))
	var out []Point
	for class, anchor := range anchors {
		for i := 0; i < n; i++ {
			out = append(out, Point{
				Values:   vector.Vector{anchor + rng.NormFloat64()*0.2, rng.NormFloat64() * 0.2},
				Class:    class,
				Assigned: assign(class, i),
				Time:     vclock.Time(float64(len(out)) * 0.01),
			})
		}
	}
	return out
}

func TestPerfectClusteringScoresOne(t *testing.T) {
	points := mkBlobs([]float64{0, 10, 20}, 30, func(class, _ int) int { return class + 5 })
	res, err := Evaluate(points, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CMM != 1 {
		t.Errorf("CMM = %v, want 1", res.CMM)
	}
	if res.Faults != 0 || res.Missed != 0 || res.Misplaced != 0 || res.NoiseIncluded != 0 {
		t.Errorf("faults = %+v", res)
	}
	if math.Abs(res.Purity-1) > 1e-12 {
		t.Errorf("Purity = %v", res.Purity)
	}
	if res.Evaluated != 90 {
		t.Errorf("Evaluated = %d", res.Evaluated)
	}
}

func TestAllNoiseAssignmentPenalizesMissed(t *testing.T) {
	points := mkBlobs([]float64{0, 10}, 20, func(_, _ int) int { return Noise })
	res, err := Evaluate(points, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 40 {
		t.Errorf("Missed = %d, want 40", res.Missed)
	}
	// Every record penalized at full connectivity: CMM = 0.
	if res.CMM > 1e-9 {
		t.Errorf("CMM = %v, want 0", res.CMM)
	}
}

func TestMisplacedRecordsPenalized(t *testing.T) {
	// Class 0 → cluster 0, class 1 → cluster 1, except 5 class-0 records
	// stuffed into cluster 1.
	misplacedCount := 0
	points := mkBlobs([]float64{0, 10}, 30, func(class, i int) int {
		if class == 0 && i < 5 {
			misplacedCount++
			return 1
		}
		return class
	})
	res, err := Evaluate(points, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misplaced != misplacedCount {
		t.Errorf("Misplaced = %d, want %d", res.Misplaced, misplacedCount)
	}
	if res.CMM >= 1 || res.CMM <= 0 {
		t.Errorf("CMM = %v, want in (0,1)", res.CMM)
	}
	if res.Purity >= 1 {
		t.Errorf("Purity = %v, want < 1", res.Purity)
	}
}

func TestNoiseInclusionPenalized(t *testing.T) {
	points := mkBlobs([]float64{0}, 30, func(_, _ int) int { return 0 })
	// Distant noise records stuffed into cluster 0.
	for i := 0; i < 5; i++ {
		points = append(points, Point{
			Values:   vector.Vector{100 + float64(i), 100},
			Class:    Noise,
			Assigned: 0,
			Time:     1,
		})
	}
	res, err := Evaluate(points, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoiseIncluded != 5 {
		t.Errorf("NoiseIncluded = %d, want 5", res.NoiseIncluded)
	}
	if res.CMM >= 1 {
		t.Errorf("CMM = %v, want < 1", res.CMM)
	}
}

func TestNoiseLeftAsNoiseIsFree(t *testing.T) {
	points := mkBlobs([]float64{0}, 20, func(_, _ int) int { return 0 })
	points = append(points, Point{
		Values: vector.Vector{50, 50}, Class: Noise, Assigned: Noise, Time: 1,
	})
	res, err := Evaluate(points, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CMM != 1 || res.Faults != 0 {
		t.Errorf("noise-as-noise penalized: %+v", res)
	}
}

func TestAgeDecayReducesOldFaultImpact(t *testing.T) {
	// Same fault set, but in run A the misplaced records are recent and
	// in run B they are old: B must score higher (old faults matter less).
	build := func(faultTime vclock.Time) []Point {
		points := mkBlobs([]float64{0, 10}, 30, func(class, _ int) int { return class })
		for i := range points {
			points[i].Time = 99 // everything recent by default
		}
		for i := 0; i < 8; i++ {
			points[i].Assigned = 1 // misplace some class-0 records
			points[i].Time = faultTime
		}
		return points
	}
	now := vclock.Time(100)
	recent, err := Evaluate(build(99), now, Config{Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	old, err := Evaluate(build(0), now, Config{Lambda: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if old.CMM <= recent.CMM {
		t.Errorf("old faults (CMM %v) should hurt less than recent (CMM %v)", old.CMM, recent.CMM)
	}
}

func TestCMMOrderingMatchesErrorSeverity(t *testing.T) {
	// More misplaced records => lower CMM.
	run := func(misplaced int) float64 {
		points := mkBlobs([]float64{0, 10}, 40, func(class, i int) int {
			if class == 0 && i < misplaced {
				return 1
			}
			return class
		})
		res, err := Evaluate(points, 1, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.CMM
	}
	c0, c5, c20 := run(0), run(5), run(20)
	if !(c0 > c5 && c5 > c20) {
		t.Errorf("CMM not monotone in error count: %v %v %v", c0, c5, c20)
	}
}

func TestSSQComputed(t *testing.T) {
	points := []Point{
		{Values: vector.Vector{0, 0}, Class: 0, Assigned: 0, Time: 0},
		{Values: vector.Vector{2, 0}, Class: 0, Assigned: 0, Time: 0},
	}
	res, err := Evaluate(points, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Mean (1,0); each point 1 away: SSQ = 2.
	if math.Abs(res.SSQ-2) > 1e-12 {
		t.Errorf("SSQ = %v, want 2", res.SSQ)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, 0, Config{}); err == nil {
		t.Error("empty points accepted")
	}
	bad := []Point{
		{Values: vector.Vector{1, 2}},
		{Values: vector.Vector{1}},
	}
	if _, err := Evaluate(bad, 0, Config{}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestKnnDist(t *testing.T) {
	points := []Point{
		{Values: vector.Vector{0}},
		{Values: vector.Vector{1}},
		{Values: vector.Vector{3}},
		{Values: vector.Vector{10}},
	}
	members := []int{0, 1, 2, 3}
	// From point 0: neighbors at 1, 3, 10; k=2 nearest: 1 and 3 => 2.
	if got := knnDist(points, members, 0, 2); got != 2 {
		t.Errorf("knnDist = %v, want 2", got)
	}
	// Singleton member set: distance 0.
	if got := knnDist(points, []int{0}, 0, 2); got != 0 {
		t.Errorf("singleton knnDist = %v", got)
	}
}

func TestWindowBasics(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWindow(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	for i := 0; i < 5; i++ {
		w.Push(stream.Record{Seq: uint64(i), Timestamp: vclock.Time(i), Values: vector.Vector{float64(i)}, Label: 0})
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	recs := w.Records()
	if recs[0].Seq != 2 || recs[2].Seq != 4 {
		t.Errorf("window order wrong: %v %v", recs[0].Seq, recs[2].Seq)
	}
}

func TestWindowPartialFill(t *testing.T) {
	w, err := NewWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	w.Push(stream.Record{Seq: 7, Values: vector.Vector{1}})
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Records(); len(got) != 1 || got[0].Seq != 7 {
		t.Errorf("Records = %v", got)
	}
}

func TestWindowScore(t *testing.T) {
	w, err := NewWindow(100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		label := i % 2
		base := float64(label) * 10
		w.Push(stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * 0.01),
			Values:    vector.Vector{base + rng.NormFloat64()*0.2, 0},
			Label:     label,
		})
	}
	// Perfect assignment by threshold.
	res, err := w.Score(func(rec stream.Record) int {
		if rec.Values[0] > 5 {
			return 1
		}
		return 0
	}, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CMM != 1 {
		t.Errorf("CMM = %v, want 1", res.CMM)
	}
	// Empty window errors.
	w2, _ := NewWindow(5)
	if _, err := w2.Score(func(stream.Record) int { return 0 }, 1, Config{}); err == nil {
		t.Error("empty window scored")
	}
}
