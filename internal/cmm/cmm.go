// Package cmm implements the Cluster Mapping Measure (Kremer et al., KDD
// 2011), the stream clustering quality criterion the paper evaluates with
// (§VII-B: "CMM … is more accurate than batch-oriented metrics such as
// SSQ, Purity, and F-measure"). CMM decays the weight of aging records
// and penalizes the three error classes of evolving streams — missed
// records, misplaced records, and noise inclusion — normalizing to [0,1]
// where larger is better.
//
// The implementation follows the published measure: k-nearest-neighbor
// connectivity con(o, C), a weight-maximal cluster-to-class mapping, and
// penalties pen(o) = con(o, Cl(o)) · (1 − con(o, map(C(o)))) for
// misplaced objects, con(o, Cl(o)) for missed objects, and
// 1 − con(o, map(C(o))) for noise objects swallowed by a cluster.
// One deliberate choice: the penalty mass is normalized over the whole
// evaluation window (Σ over all objects of w(o)·con(o, Cl(o))) rather
// than over the fault set alone, so the measure degrades smoothly with
// the weighted fraction of faulty records — the behaviour the paper's
// Figure 6 curves exhibit — instead of collapsing to 0 as soon as any
// fault reaches its maximal penalty. Purity and SSQ are provided for
// comparison.
package cmm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// Noise is the class/cluster id for noise (matches stream.Record.Label
// semantics and Clustering.Assign's "no cluster").
const Noise = -1

// Point is one evaluated record: ground truth class, assigned cluster,
// and its arrival time (for age decay).
type Point struct {
	Values   vector.Vector
	Class    int // ground truth; Noise for noise records
	Assigned int // clustering output; Noise when unassigned
	Time     vclock.Time
}

// Config parameterizes the measure.
type Config struct {
	// K is the neighborhood size for connectivity. Default 3.
	K int
	// Lambda is the age-decay exponent: w(o) = 2^(-Lambda·(now-t_o)).
	// Default 0.01 (records a full window old still count substantially).
	Lambda float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.K <= 0 {
		out.K = 3
	}
	if out.Lambda < 0 {
		out.Lambda = 0
	} else if out.Lambda == 0 {
		out.Lambda = 0.01
	}
	return out
}

// Result is the outcome of one CMM evaluation.
type Result struct {
	// CMM is the measure in [0, 1]; 1 means no penalized faults.
	CMM float64
	// Missed counts class records the clustering assigned to noise.
	Missed int
	// Misplaced counts records assigned to a cluster mapped to a
	// different class.
	Misplaced int
	// NoiseIncluded counts noise records swallowed by a cluster.
	NoiseIncluded int
	// Faults is the total fault-set size.
	Faults int
	// Evaluated is the number of points scored.
	Evaluated int
	// Purity is the weight fraction of records whose cluster maps to
	// their class (batch-style comparison metric).
	Purity float64
	// SSQ is the sum of squared distances from each clustered record to
	// the mean of its assigned cluster.
	SSQ float64
}

// Evaluate scores the clustering at time now.
func Evaluate(points []Point, now vclock.Time, cfg Config) (Result, error) {
	if len(points) == 0 {
		return Result{}, errors.New("cmm: no points")
	}
	c := cfg.withDefaults()
	dim := len(points[0].Values)
	for i, p := range points {
		if len(p.Values) != dim {
			return Result{}, fmt.Errorf("cmm: point %d has dim %d, want %d", i, len(p.Values), dim)
		}
	}

	weights := make([]float64, len(points))
	for i, p := range points {
		age := float64(now - p.Time)
		if age < 0 {
			age = 0
		}
		weights[i] = math.Exp2(-c.Lambda * age)
	}

	byClass := groupBy(points, func(p Point) int { return p.Class })
	byCluster := groupBy(points, func(p Point) int { return p.Assigned })

	mapping := mapClustersToClasses(points, weights, byCluster)

	// Average kNN distance per class (the connectivity reference).
	classKnn := make(map[int]float64, len(byClass))
	for class, members := range byClass {
		if class == Noise {
			continue
		}
		classKnn[class] = avgKnnDist(points, members, c.K)
	}

	res := Result{Evaluated: len(points)}
	var penaltySum, normSum, purityHit, weightSum float64
	for i, p := range points {
		w := weights[i]
		weightSum += w
		mapped, hasMapped := mappedClass(mapping, p.Assigned)
		if hasMapped && p.Class != Noise && mapped == p.Class {
			purityHit += w
		}
		// Every object contributes its maximal possible penalty to the
		// normalization (see package comment).
		if p.Class != Noise {
			normSum += w * connectivity(points, byClass[p.Class], classKnn[p.Class], i, c.K)
		} else {
			normSum += w
		}
		switch {
		case p.Class != Noise && p.Assigned == Noise:
			// Missed record.
			res.Missed++
			conOwn := connectivity(points, byClass[p.Class], classKnn[p.Class], i, c.K)
			penaltySum += w * conOwn
		case p.Class == Noise && p.Assigned != Noise && hasMapped && mapped != Noise:
			// Noise record swallowed by a cluster.
			res.NoiseIncluded++
			conMap := connectivity(points, byClass[mapped], classKnn[mapped], i, c.K)
			penaltySum += w * (1 - conMap)
		case p.Class != Noise && p.Assigned != Noise && hasMapped && mapped != p.Class && mapped != Noise:
			// Misplaced record.
			res.Misplaced++
			conOwn := connectivity(points, byClass[p.Class], classKnn[p.Class], i, c.K)
			conMap := connectivity(points, byClass[mapped], classKnn[mapped], i, c.K)
			penaltySum += w * conOwn * (1 - conMap)
		}
	}
	res.Faults = res.Missed + res.Misplaced + res.NoiseIncluded
	if normSum <= 0 {
		res.CMM = 1
	} else {
		res.CMM = 1 - penaltySum/normSum
		if res.CMM < 0 {
			res.CMM = 0
		}
	}
	if weightSum > 0 {
		res.Purity = purityHit / weightSum
	}
	res.SSQ = ssq(points, byCluster)
	return res, nil
}

// groupBy indexes points by a key function.
func groupBy(points []Point, key func(Point) int) map[int][]int {
	out := map[int][]int{}
	for i, p := range points {
		k := key(p)
		out[k] = append(out[k], i)
	}
	return out
}

// mapClustersToClasses maps each cluster to the class holding maximal
// weight inside it (Kremer's cluster-to-class surjection). Clusters whose
// dominant content is noise map to Noise.
func mapClustersToClasses(points []Point, weights []float64, byCluster map[int][]int) map[int]int {
	mapping := make(map[int]int, len(byCluster))
	for cluster, members := range byCluster {
		if cluster == Noise {
			continue
		}
		classWeight := map[int]float64{}
		for _, i := range members {
			classWeight[points[i].Class] += weights[i]
		}
		bestClass, bestW := Noise, -1.0
		// Deterministic tie-break: smallest class id wins.
		classes := make([]int, 0, len(classWeight))
		for class := range classWeight {
			classes = append(classes, class)
		}
		sort.Ints(classes)
		for _, class := range classes {
			if classWeight[class] > bestW {
				bestClass, bestW = class, classWeight[class]
			}
		}
		mapping[cluster] = bestClass
	}
	return mapping
}

func mappedClass(mapping map[int]int, cluster int) (int, bool) {
	if cluster == Noise {
		return Noise, false
	}
	class, ok := mapping[cluster]
	return class, ok
}

// knnDist returns the average distance from points[i] to its k nearest
// neighbors among members (excluding itself).
func knnDist(points []Point, members []int, i, k int) float64 {
	dists := make([]float64, 0, len(members))
	for _, j := range members {
		if j == i {
			continue
		}
		dists = append(dists, vector.Distance(points[i].Values, points[j].Values))
	}
	if len(dists) == 0 {
		return 0
	}
	sort.Float64s(dists)
	if k > len(dists) {
		k = len(dists)
	}
	var sum float64
	for _, d := range dists[:k] {
		sum += d
	}
	return sum / float64(k)
}

// avgKnnDist is the class-level connectivity reference: the mean kNN
// distance over the class members.
func avgKnnDist(points []Point, members []int, k int) float64 {
	if len(members) == 0 {
		return 0
	}
	var sum float64
	for _, i := range members {
		sum += knnDist(points, members, i, k)
	}
	return sum / float64(len(members))
}

// connectivity computes con(o, C): 1 when the object is at least as close
// to the class as the class is to itself; the ratio otherwise.
func connectivity(points []Point, members []int, classAvg float64, i, k int) float64 {
	if len(members) == 0 {
		return 0
	}
	d := knnDist(points, members, i, k)
	if d <= classAvg || classAvg == 0 && d == 0 {
		return 1
	}
	if classAvg == 0 {
		return 0
	}
	return classAvg / d
}

// ssq is the sum of squared distances to assigned-cluster means.
func ssq(points []Point, byCluster map[int][]int) float64 {
	var total float64
	for cluster, members := range byCluster {
		if cluster == Noise || len(members) == 0 {
			continue
		}
		mean := vector.New(len(points[members[0]].Values))
		for _, i := range members {
			mean.Add(points[i].Values)
		}
		mean.Scale(1 / float64(len(members)))
		for _, i := range members {
			total += vector.SquaredDistance(points[i].Values, mean)
		}
	}
	return total
}
