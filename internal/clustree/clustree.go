// Package clustree implements the ClusTree algorithm (Kranen et al.,
// KAIS 2011) on the DistStream Algorithm API.
//
// ClusTree organizes micro-clusters (decayed cluster features) in a
// balanced tree for logarithmic closest-micro-cluster search — the
// property that gives it 1.1–1.3x higher assign throughput than the
// linear-scan algorithms in the paper's Fig. 10. Micro-clusters decay
// exponentially; the model keeps a budget of leaves, merging the closest
// pair when over budget; the offline phase runs weighted k-means over
// the leaf micro-clusters.
//
// Substitution note: the original ClusTree maintains its tree
// incrementally with hitchhiker insertions. On DistStream the model is
// re-broadcast every batch anyway, so this implementation bulk-loads the
// tree from the micro-cluster list at snapshot time (recursive k-means
// splitting). Search behaviour — greedy descent to the nearest leaf — is
// the same; see DESIGN.md.
package clustree

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"diststream/internal/core"
	"diststream/internal/nncache"
	"diststream/internal/offline"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Name is the registry name of this algorithm.
const Name = "clustree"

// MC is a ClusTree leaf micro-cluster: a decayed CF triple.
type MC struct {
	Id   uint64
	CF1  vector.Vector
	CF2  vector.Vector
	W    float64
	Born vclock.Time
	Last vclock.Time
}

var _ core.MicroCluster = (*MC)(nil)

// ID implements core.MicroCluster.
func (m *MC) ID() uint64 { return m.Id }

// SetID implements core.MicroCluster.
func (m *MC) SetID(id uint64) { m.Id = id }

// Weight implements core.MicroCluster.
func (m *MC) Weight() float64 { return m.W }

// CreatedAt implements core.MicroCluster.
func (m *MC) CreatedAt() vclock.Time { return m.Born }

// LastUpdated implements core.MicroCluster.
func (m *MC) LastUpdated() vclock.Time { return m.Last }

// Center implements core.MicroCluster.
func (m *MC) Center() vector.Vector {
	if m.W == 0 {
		return m.CF1.Clone()
	}
	return m.CF1.Clone().Scale(1 / m.W)
}

// Clone implements core.MicroCluster.
func (m *MC) Clone() core.MicroCluster {
	out := *m
	out.CF1 = m.CF1.Clone()
	out.CF2 = m.CF2.Clone()
	return &out
}

// DistanceTo returns the Euclidean distance from the micro-cluster's
// centroid to v without materializing the centroid (hot-path helper).
func (m *MC) DistanceTo(v vector.Vector) float64 {
	if m.W == 0 {
		return vector.Distance(m.CF1, v)
	}
	inv := 1 / m.W
	var sum float64
	for d := range m.CF1 {
		diff := m.CF1[d]*inv - v[d]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// Radius returns the weighted RMS deviation in Euclidean distance units
// (full-norm sqrt(Σ_d var_d)).
func (m *MC) Radius() float64 {
	if m.W == 0 {
		return 0
	}
	var sum float64
	for d := range m.CF1 {
		mean := m.CF1[d] / m.W
		v := m.CF2[d]/m.W - mean*mean
		if v > 0 {
			sum += v
		}
	}
	return math.Sqrt(sum)
}

// Decay fades the CF from the last update to now.
func (m *MC) Decay(now vclock.Time, lambda float64) {
	dt := float64(now - m.Last)
	if dt <= 0 {
		return
	}
	f := math.Exp2(-lambda * dt)
	m.CF1.Scale(f)
	m.CF2.Scale(f)
	m.W *= f
	m.Last = now
}

// Absorb folds one record with decay-before-add using the absolute time
// gap (λ ≤ 1 always, the §IV-C1 naive-update model): out-of-order records
// under the unordered baseline decay newer content. See the DenStream
// counterpart for the full rationale.
func (m *MC) Absorb(rec stream.Record, lambda float64) {
	dt := math.Abs(float64(rec.Timestamp - m.Last))
	if dt != 0 {
		f := math.Exp2(-lambda * dt)
		m.CF1.Scale(f)
		m.CF2.Scale(f)
		m.W *= f
	}
	m.Last = rec.Timestamp
	m.CF1.Add(rec.Values)
	m.CF2.AddSquared(rec.Values)
	m.W++
}

// Merge folds other into m.
func (m *MC) Merge(other *MC) {
	m.CF1.Add(other.CF1)
	m.CF2.Add(other.CF2)
	m.W += other.W
	if other.Last > m.Last {
		m.Last = other.Last
	}
	if other.Born < m.Born {
		m.Born = other.Born
	}
}

// Config parameterizes ClusTree.
type Config struct {
	// Dim is the record dimensionality.
	Dim int
	// MaxLeaves is the micro-cluster budget. Default 100.
	MaxLeaves int
	// Fanout is the tree node capacity. Default 3 (the original
	// ClusTree's M).
	Fanout int
	// Lambda is the decay exponent in 2^(-λ·Δt). Default 0.25.
	Lambda float64
	// RadiusFactor scales the RMS deviation into the absorb boundary.
	// Default 2.
	RadiusFactor float64
	// NewRadius is the absorb boundary for singleton micro-clusters.
	// Default 1.
	NewRadius float64
	// NumMacro is k for the offline weighted k-means. Default 5.
	NumMacro int
	// Seed drives tree bulk-loading and offline k-means.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxLeaves <= 0 {
		out.MaxLeaves = 100
	}
	if out.Fanout < 2 {
		out.Fanout = 3
	}
	if out.Lambda <= 0 {
		out.Lambda = 0.25
	}
	if out.RadiusFactor <= 0 {
		out.RadiusFactor = 2
	}
	if out.NewRadius <= 0 {
		out.NewRadius = 1
	}
	if out.NumMacro <= 0 {
		out.NumMacro = 5
	}
	return out
}

// Algorithm implements core.Algorithm for ClusTree.
type Algorithm struct {
	cfg Config
}

var _ core.Algorithm = (*Algorithm)(nil)

// New returns a ClusTree instance with defaults applied.
func New(cfg Config) *Algorithm {
	return &Algorithm{cfg: cfg.withDefaults()}
}

// Register adds the ClusTree factory to an algorithm registry.
func Register(reg *core.AlgorithmRegistry) error {
	return reg.Register(Name, func(p core.Params) (core.Algorithm, error) {
		return New(Config{
			Dim:          p.Dim,
			MaxLeaves:    p.Int("maxLeaves", 0),
			Fanout:       p.Int("fanout", 0),
			Lambda:       p.Float("lambda", 0),
			RadiusFactor: p.Float("radiusFactor", 0),
			NewRadius:    p.Float("newRadius", 0),
			NumMacro:     p.Int("numMacro", 0),
			Seed:         int64(p.Int("seed", 0)),
		}), nil
	})
}

// RegisterWireTypes registers gob payload types.
func RegisterWireTypes() {
	gob.Register(&MC{})
	gob.Register(&Snapshot{})
	wire.RegisterMCCodec(Name, &MC{}, encMC, decMC)
	gob.Register(&Node{})
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// Params implements core.Algorithm.
func (a *Algorithm) Params() core.Params {
	return core.Params{
		Name: Name,
		Dim:  a.cfg.Dim,
		Ints: map[string]int{
			"maxLeaves": a.cfg.MaxLeaves,
			"fanout":    a.cfg.Fanout,
			"numMacro":  a.cfg.NumMacro,
			"seed":      int(a.cfg.Seed),
		},
		Floats: map[string]float64{
			"lambda":       a.cfg.Lambda,
			"radiusFactor": a.cfg.RadiusFactor,
			"newRadius":    a.cfg.NewRadius,
		},
	}
}

// Init implements core.Algorithm: greedy leader clustering, capped at the
// leaf budget.
func (a *Algorithm) Init(records []stream.Record) ([]core.MicroCluster, error) {
	if len(records) == 0 {
		return nil, errors.New("clustree: empty init sample")
	}
	var mcs []*MC
	for _, rec := range records {
		var best *MC
		bestD := math.Inf(1)
		for _, mc := range mcs {
			if d := mc.DistanceTo(rec.Values); d < bestD {
				best, bestD = mc, d
			}
		}
		if best != nil && (bestD <= a.boundary(best) || len(mcs) >= a.cfg.MaxLeaves) {
			best.Absorb(rec, a.cfg.Lambda)
			continue
		}
		mcs = append(mcs, a.newMC(rec))
	}
	out := make([]core.MicroCluster, len(mcs))
	for i, mc := range mcs {
		out[i] = mc
	}
	return out, nil
}

func (a *Algorithm) newMC(rec stream.Record) *MC {
	return &MC{
		CF1:  rec.Values.Clone(),
		CF2:  vector.New(len(rec.Values)).AddSquared(rec.Values),
		W:    1,
		Born: rec.Timestamp,
		Last: rec.Timestamp,
	}
}

// boundary is the absorb radius: RadiusFactor times the RMS deviation,
// floored at NewRadius so that tightly packed micro-clusters (tiny
// deviation) still absorb their own neighborhood.
func (a *Algorithm) boundary(m *MC) float64 {
	b := a.cfg.NewRadius
	if m.W >= 2 {
		if r := a.cfg.RadiusFactor * m.Radius(); r > b {
			b = r
		}
	}
	return b
}

// NewSnapshot implements core.Algorithm: bulk-load the CF tree.
func (a *Algorithm) NewSnapshot(mcs []core.MicroCluster) core.Snapshot {
	snap := &Snapshot{
		MCs:          mcs,
		Centers:      make([]vector.Vector, len(mcs)),
		Boundaries:   make([]float64, len(mcs)),
		ByID:         make(map[uint64]int, len(mcs)),
		RadiusFactor: a.cfg.RadiusFactor,
	}
	for i, mc := range mcs {
		snap.Centers[i] = mc.Center()
		snap.Boundaries[i] = a.boundary(mc.(*MC))
		snap.ByID[mc.ID()] = i
	}
	idx := make([]int, len(mcs))
	for i := range idx {
		idx[i] = i
	}
	snap.Root = buildNode(snap.Centers, idx, a.cfg.Fanout, a.cfg.Seed)
	return snap
}

// Node is one tree node: either a leaf holding micro-cluster indices or
// an internal node with child entries summarized by their centroid.
type Node struct {
	// Leaf entries: indices into the snapshot's MCs.
	Items []int
	// LeafCenters row i is the center of micro-cluster Items[i], packed
	// contiguously so the leaf scan is one flat kernel call.
	LeafCenters vector.Matrix
	// Internal entries.
	Children []*Node
	// Pivots row i is the centroid summarizing Children[i].
	Pivots vector.Matrix
}

// newLeaf packs the centers of the given indices into a flat leaf.
func newLeaf(centers []vector.Vector, idx []int) *Node {
	n := &Node{Items: append([]int(nil), idx...)}
	if len(idx) > 0 {
		m := vector.NewMatrix(len(idx), len(centers[idx[0]]))
		for i, id := range idx {
			m.SetRow(i, centers[id])
		}
		n.LeafCenters = m
	}
	return n
}

// buildNode recursively bulk-loads a tree over the given point indices
// using k-means splits of arity fanout.
func buildNode(centers []vector.Vector, idx []int, fanout int, seed int64) *Node {
	if len(idx) == 0 {
		return &Node{}
	}
	if len(idx) <= fanout {
		return newLeaf(centers, idx)
	}
	pts := make([]vector.Vector, len(idx))
	for i, id := range idx {
		pts[i] = centers[id]
	}
	res, err := offline.KMeans(pts, offline.KMeansConfig{K: fanout, Seed: seed, MaxIterations: 8})
	if err != nil {
		// Degenerate split (should not happen with len > fanout > 0):
		// fall back to a flat leaf.
		return newLeaf(centers, idx)
	}
	groups := make([][]int, len(res.Centroids))
	for i, g := range res.Assignments {
		groups[g] = append(groups[g], idx[i])
	}
	node := &Node{}
	var pivots []vector.Vector
	for g, members := range groups {
		if len(members) == 0 {
			continue
		}
		if len(members) == len(idx) {
			// k-means failed to split (identical points): flat leaf.
			return newLeaf(centers, idx)
		}
		node.Children = append(node.Children, buildNode(centers, members, fanout, seed+int64(g)+1))
		pivots = append(pivots, res.Centroids[g])
	}
	if len(node.Children) == 1 {
		return node.Children[0]
	}
	m, err := vector.MatrixFromRows(pivots)
	if err != nil {
		return newLeaf(centers, idx)
	}
	node.Pivots = m
	return node
}

// Update implements core.Algorithm.
func (a *Algorithm) Update(mc core.MicroCluster, rec stream.Record) {
	mc.(*MC).Absorb(rec, a.cfg.Lambda)
}

// Create implements core.Algorithm.
func (a *Algorithm) Create(rec stream.Record) core.MicroCluster {
	return a.newMC(rec)
}

// AbsorbIntoNew implements core.Algorithm.
func (a *Algorithm) AbsorbIntoNew(mc core.MicroCluster, rec stream.Record) bool {
	m := mc.(*MC)
	return m.DistanceTo(rec.Values) <= a.boundary(m)
}

// GlobalUpdate implements core.Algorithm: apply updates in order, merge
// the closest pairs while over the leaf budget, then decay untouched
// leaves and drop faded ones. As in CluStream, budget merges run after
// all updates are applied so that no micro-cluster with a pending update
// is merged (mass safety) and the closest-pair cache stays incremental.
func (a *Algorithm) GlobalUpdate(model *core.Model, updates []core.Update, now vclock.Time) error {
	touched := make(map[uint64]bool, len(updates))
	for _, u := range updates {
		switch u.Kind {
		case core.KindUpdated:
			if model.Get(u.MC.ID()) == nil {
				model.Add(u.MC)
			} else if err := model.Replace(u.MC); err != nil {
				return err
			}
		case core.KindCreated:
			model.Add(u.MC)
		default:
			return fmt.Errorf("clustree: unknown update kind %d", u.Kind)
		}
		touched[u.MC.ID()] = true
	}
	if err := a.enforceBudget(model); err != nil {
		return err
	}
	// Periodic decay/prune sweep; batch calls always sweep, the
	// sequential runner sweeps once per sweepInterval of virtual time.
	if !sweepDue(model, now, len(updates)) {
		return nil
	}
	const minWeight = 0.05
	for _, mc := range model.List() {
		m := mc.(*MC)
		if !touched[m.Id] {
			m.Decay(now, a.cfg.Lambda)
		}
		if m.W < minWeight {
			model.Remove(m.Id)
		}
	}
	return nil
}

// sweepInterval is the virtual-time period of the maintenance sweep.
const sweepInterval = 1.0

// sweepDue reports whether the periodic sweep should run now, updating
// the model's bookkeeping when it does.
func sweepDue(model *core.Model, now vclock.Time, updates int) bool {
	last, ok := model.MetaFloat("clustree.lastSweep")
	if updates <= 1 && ok && float64(now)-last < sweepInterval {
		return false
	}
	model.SetMetaFloat("clustree.lastSweep", float64(now))
	return true
}

// enforceBudget merges closest pairs until the leaf budget holds, using
// an incrementally maintained nearest-neighbor cache built only when the
// budget is actually exceeded.
func (a *Algorithm) enforceBudget(model *core.Model) error {
	if model.Len() <= a.cfg.MaxLeaves {
		return nil
	}
	cache := nncache.New()
	for _, mc := range model.List() {
		cache.Put(mc.ID(), mc.Center())
	}
	for model.Len() > a.cfg.MaxLeaves {
		i, j, ok := cache.ClosestPair(nil)
		if !ok {
			return errors.New("clustree: budget exceeded but nothing to merge")
		}
		dst := model.Get(i).(*MC)
		dst.Merge(model.Get(j).(*MC))
		model.Remove(j)
		cache.Remove(j)
		cache.Put(dst.Id, dst.Center())
	}
	return nil
}

// Offline implements core.Algorithm: weighted k-means over leaf
// micro-clusters.
func (a *Algorithm) Offline(model *core.Model) (*core.Clustering, error) {
	mcs := model.List()
	if len(mcs) == 0 {
		return core.NewClustering(nil, nil, nil), nil
	}
	centers := make([]vector.Vector, len(mcs))
	weights := make([]float64, len(mcs))
	for i, mc := range mcs {
		centers[i] = mc.Center()
		weights[i] = mc.Weight()
	}
	res, err := offline.WeightedKMeans(centers, weights, offline.KMeansConfig{
		K:    a.cfg.NumMacro,
		Seed: a.cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("clustree: offline k-means: %w", err)
	}
	k := len(res.Centroids)
	macros := make([]core.MacroCluster, k)
	for i := range macros {
		macros[i].Label = i
	}
	labels := make([]int, len(mcs))
	for i, mc := range mcs {
		g := res.Assignments[i]
		labels[i] = g
		macros[g].Members = append(macros[g].Members, mc.ID())
		macros[g].Weight += weights[i]
		if macros[g].Center == nil {
			macros[g].Center = vector.New(len(centers[i]))
		}
		macros[g].Center.AXPY(weights[i], centers[i])
	}
	for g := range macros {
		if macros[g].Weight > 0 {
			macros[g].Center.Scale(1 / macros[g].Weight)
		}
	}
	clustering := core.NewClustering(macros, centers, labels)
	var rsum, wsum float64
	for _, mc := range mcs {
		m := mc.(*MC)
		rsum += m.W * m.Radius()
		wsum += m.W
	}
	cutoff := 2 * a.cfg.NewRadius
	if wsum > 0 {
		if b := 2 * a.cfg.RadiusFactor * rsum / wsum; b > cutoff {
			cutoff = b
		}
	}
	clustering.SetNoiseCutoff(cutoff)
	return clustering, nil
}

// Snapshot is ClusTree's tree-search structure.
type Snapshot struct {
	MCs          []core.MicroCluster
	Centers      []vector.Vector
	Boundaries   []float64
	ByID         map[uint64]int
	Root         *Node
	RadiusFactor float64
}

var _ core.Snapshot = (*Snapshot)(nil)

// beamWidth bounds how many subtrees the descent keeps per level. Pure
// greedy descent (beam 1) mis-routes badly in high dimensions — almost
// every record would land at a leaf far from its true nearest
// micro-cluster and be mislabeled an outlier. A small beam restores
// accuracy while keeping the search sublinear, matching the paper's
// observation that tree search buys a modest 1.1-1.3x over linear scan.
const beamWidth = 4

// Nearest implements core.Snapshot: beam descent to the closest leaves.
// The frontier is kept in fixed-size stack arrays (beamWidth nodes, each
// expanding to at most its fanout children), so the per-record search
// does not allocate.
func (s *Snapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	if len(s.MCs) == 0 || s.Root == nil {
		return 0, false, false
	}
	var frontier [beamWidth]*Node
	frontier[0] = s.Root
	frontierLen := 1
	bestIdx, bestD := -1, math.Inf(1)
	for frontierLen > 0 {
		// Top-beamWidth children across the frontier by pivot distance.
		var nextNode [beamWidth]*Node
		var nextDist [beamWidth]float64
		nextLen := 0
		for f := 0; f < frontierLen; f++ {
			node := frontier[f]
			if len(node.Children) == 0 {
				// Leaf visit: one flat kernel call over the packed leaf
				// centers, seeded with the running best so losing rows
				// are abandoned early. The threaded bound makes the
				// multi-leaf sequence reproduce one continuous scalar
				// scan over the visited items.
				if li, d := vector.ArgminBelowBound(rec.Values, node.LeafCenters, bestD); li >= 0 {
					bestIdx, bestD = node.Items[li], d
				}
				continue
			}
			for i := 0; i < node.Pivots.Rows; i++ {
				d := vector.SquaredDistance(rec.Values, node.Pivots.Row(i))
				// Insertion into the running top-k.
				if nextLen < beamWidth {
					j := nextLen
					for j > 0 && nextDist[j-1] > d {
						nextDist[j], nextNode[j] = nextDist[j-1], nextNode[j-1]
						j--
					}
					nextDist[j], nextNode[j] = d, node.Children[i]
					nextLen++
					continue
				}
				if d >= nextDist[beamWidth-1] {
					continue
				}
				j := beamWidth - 1
				for j > 0 && nextDist[j-1] > d {
					nextDist[j], nextNode[j] = nextDist[j-1], nextNode[j-1]
					j--
				}
				nextDist[j], nextNode[j] = d, node.Children[i]
			}
		}
		frontier = nextNode
		frontierLen = nextLen
	}
	if bestIdx < 0 {
		return 0, false, false
	}
	return s.MCs[bestIdx].ID(), math.Sqrt(bestD) <= s.Boundaries[bestIdx], true
}

// NearestAll implements core.BatchNearester by running the beam descent
// per record. The descent path is data-dependent (each record prunes a
// different subtree), so there is no block of records sharing one
// centers matrix to tile — batching the leaf kernels would change which
// leaves the (approximate) beam visits and break bit-identity with
// Nearest. Adopting the capability still pays: the assign op unboxes and
// classifies the partition in one call instead of interface-dispatching
// per record.
func (s *Snapshot) NearestAll(recs []stream.Record, ids []uint64, absorb, found []bool) ([]uint64, []bool, []bool) {
	ids, absorb, found = core.GrowNearestOut(len(recs), ids, absorb, found)
	for i := range recs {
		ids[i], absorb[i], found[i] = s.Nearest(recs[i])
	}
	return ids, absorb, found
}

// Get implements core.Snapshot.
func (s *Snapshot) Get(id uint64) core.MicroCluster {
	i, ok := s.ByID[id]
	if !ok {
		return nil
	}
	return s.MCs[i]
}

// Len implements core.Snapshot.
func (s *Snapshot) Len() int { return len(s.MCs) }
