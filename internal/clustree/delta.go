package clustree

import (
	"fmt"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Delta broadcast support. ClusTree leaves untouched entries
// bit-identical across batches, so steady-state deltas carry only the
// leaves the batch absorbed into; the worker rebuilds the tree from the
// patched list via the same NewSnapshot the driver uses.

// ListMCs implements core.MCLister for the worker-side delta apply.
func (s *Snapshot) ListMCs() []core.MicroCluster { return s.MCs }

// DiffState implements core.SnapshotDiffer.
func (a *Algorithm) DiffState(old, new []core.MicroCluster) (*core.SnapshotDelta, bool) {
	d, ok := core.DiffMCLists(old, new, mcEqual)
	if !ok {
		return nil, false
	}
	d.Params = a.Params()
	return d, true
}

// ApplyDelta implements core.SnapshotDiffer.
func (a *Algorithm) ApplyDelta(old []core.MicroCluster, d *core.SnapshotDelta) ([]core.MicroCluster, error) {
	for i, mc := range d.Upserts {
		if _, ok := mc.(*MC); !ok {
			return nil, fmt.Errorf("clustree: delta upsert %d is %T, want *MC", i, mc)
		}
	}
	return core.ApplyMCDelta(old, d)
}

// mcEqual is bit-exact equality over every MC field.
func mcEqual(a, b core.MicroCluster) bool {
	x, ok := a.(*MC)
	if !ok {
		return false
	}
	y, ok := b.(*MC)
	if !ok {
		return false
	}
	return x.Id == y.Id &&
		core.BitsEqual(x.W, y.W) &&
		core.BitsEqual(float64(x.Born), float64(y.Born)) &&
		core.BitsEqual(float64(x.Last), float64(y.Last)) &&
		core.VecBitsEqual(x.CF1, y.CF1) &&
		core.VecBitsEqual(x.CF2, y.CF2)
}

// encMC / decMC are the columnar wire codec for *MC.
func encMC(e *wire.Enc, mc core.MicroCluster) bool {
	m, ok := mc.(*MC)
	if !ok {
		return false
	}
	e.Uint(m.Id)
	e.F64(m.W)
	e.F64(float64(m.Born))
	e.F64(float64(m.Last))
	e.F64s(m.CF1)
	e.F64s(m.CF2)
	return true
}

func decMC(d *wire.Dec) core.MicroCluster {
	m := &MC{}
	m.Id = d.Uint()
	m.W = d.F64()
	m.Born = vclock.Time(d.F64())
	m.Last = vclock.Time(d.F64())
	m.CF1 = vector.Vector(d.F64s())
	m.CF2 = vector.Vector(d.F64s())
	return m
}
