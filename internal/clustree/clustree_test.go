package clustree

import (
	"math"
	"math/rand"
	"testing"

	"diststream/internal/algotest"
	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

func testConfig() Config {
	return Config{
		Dim:       4,
		MaxLeaves: 20,
		Fanout:    3,
		Lambda:    0.1,
		NewRadius: 2,
		NumMacro:  2,
		Seed:      1,
	}
}

func TestConformance(t *testing.T) {
	algotest.Run(t, algotest.Suite{
		New:            func() core.Algorithm { return New(testConfig()) },
		Register:       Register,
		RegisterWire:   RegisterWireTypes,
		Dim:            4,
		SeparatesBlobs: true,
	})
}

func rec(seq uint64, ts vclock.Time, vals ...float64) stream.Record {
	return stream.Record{Seq: seq, Timestamp: ts, Values: vals}
}

func TestTreeBuildAndDescent(t *testing.T) {
	a := New(testConfig())
	rng := rand.New(rand.NewSource(3))
	// 50 micro-clusters scattered over 5 far-apart anchors.
	anchors := []float64{0, 100, 200, 300, 400}
	var mcs []core.MicroCluster
	for i := 0; i < 50; i++ {
		anchor := anchors[i%5]
		mc := a.Create(rec(uint64(i), 1, anchor+rng.Float64(), rng.Float64(), 0, 0))
		mc.SetID(uint64(i + 1))
		mcs = append(mcs, mc)
	}
	snap := a.NewSnapshot(mcs).(*Snapshot)
	if snap.Root == nil {
		t.Fatal("no tree built")
	}
	if len(snap.Root.Children) < 2 {
		t.Errorf("root has %d children, want a real split", len(snap.Root.Children))
	}
	// Greedy descent must find a micro-cluster at the probed anchor.
	for _, anchor := range anchors {
		id, _, ok := snap.Nearest(rec(999, 2, anchor+0.5, 0.5, 0, 0))
		if !ok {
			t.Fatalf("Nearest failed at anchor %v", anchor)
		}
		mc := snap.Get(id)
		if d := math.Abs(mc.Center()[0] - anchor); d > 5 {
			t.Errorf("descent at anchor %v found MC %v away", anchor, d)
		}
	}
}

func TestTreeExactMatchSmallSets(t *testing.T) {
	// With <= fanout micro-clusters the tree is a single leaf and search
	// is exact.
	a := New(testConfig())
	m1 := a.Create(rec(0, 1, 0, 0, 0, 0))
	m2 := a.Create(rec(1, 1, 10, 0, 0, 0))
	m1.SetID(1)
	m2.SetID(2)
	snap := a.NewSnapshot([]core.MicroCluster{m1, m2})
	id, _, ok := snap.Nearest(rec(9, 2, 9, 0, 0, 0))
	if !ok || id != 2 {
		t.Errorf("Nearest = (%d, %v)", id, ok)
	}
}

func TestBuildNodeDegenerateIdenticalPoints(t *testing.T) {
	// Identical centers cannot be split by k-means: must fall back to a
	// flat leaf, not recurse forever.
	centers := make([]vector.Vector, 10)
	idx := make([]int, 10)
	for i := range centers {
		centers[i] = vector.Vector{1, 1}
		idx[i] = i
	}
	node := buildNode(centers, idx, 3, 1)
	if len(node.Items) != 10 {
		t.Errorf("degenerate build: %d items at root", len(node.Items))
	}
}

func TestBudgetMergesClosestPair(t *testing.T) {
	cfg := testConfig()
	cfg.MaxLeaves = 2
	a := New(cfg)
	model := core.NewModel()
	model.Add(a.Create(rec(0, 1, 0, 0, 0, 0)))
	model.Add(a.Create(rec(1, 1, 0.5, 0, 0, 0)))
	created := a.Create(rec(2, 2, 100, 0, 0, 0))
	err := a.GlobalUpdate(model, []core.Update{
		{Kind: core.KindCreated, MC: created, OrderTime: 2, OrderSeq: 2},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if model.Len() != 2 {
		t.Fatalf("model size = %d, want 2", model.Len())
	}
	// The two close MCs merged (weight ~2 at center ~0.25); the new far
	// MC survived.
	if model.Get(created.ID()) == nil {
		t.Error("created MC lost")
	}
	var foundMerged bool
	for _, mc := range model.List() {
		if mc.Weight() > 1.5 && mc.Center()[0] < 1 {
			foundMerged = true
		}
	}
	if !foundMerged {
		t.Error("closest pair not merged")
	}
}

func TestDecayAndDeletion(t *testing.T) {
	a := New(testConfig())
	model := core.NewModel()
	model.Add(a.Create(rec(0, 0, 0, 0, 0, 0)))
	// lambda=0.1: weight 2^-(0.1*50) ~ 0.03 < 0.05 => deleted.
	if err := a.GlobalUpdate(model, nil, 50); err != nil {
		t.Fatal(err)
	}
	if model.Len() != 0 {
		t.Errorf("faded leaf survived")
	}
}

func TestMergeAdditivity(t *testing.T) {
	a := New(testConfig())
	m1 := a.Create(rec(0, 1, 1, 0, 0, 0)).(*MC)
	m2 := a.Create(rec(1, 1, 3, 0, 0, 0)).(*MC)
	m1.Merge(m2)
	if m1.W != 2 {
		t.Errorf("merged W = %v", m1.W)
	}
	if c := m1.Center(); math.Abs(c[0]-2) > 1e-12 {
		t.Errorf("merged center = %v", c[0])
	}
	if m1.Radius() <= 0 {
		t.Error("merged radius not positive")
	}
}

func TestOfflineKMeans(t *testing.T) {
	a := New(testConfig())
	model := core.NewModel()
	for i := 0; i < 6; i++ {
		base := 0.0
		if i >= 3 {
			base = 50
		}
		model.Add(a.Create(rec(uint64(i), 1, base+float64(i%3), base, 0, 0)))
	}
	clustering, err := a.Offline(model)
	if err != nil {
		t.Fatal(err)
	}
	if clustering.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d", clustering.NumClusters())
	}
	if clustering.Assign(vector.Vector{0, 0, 0, 0}) == clustering.Assign(vector.Vector{50, 50, 0, 0}) {
		t.Error("offline failed to separate")
	}
	empty, err := a.Offline(core.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumClusters() != 0 {
		t.Error("empty model produced clusters")
	}
}

func TestInitRespectsLeafBudget(t *testing.T) {
	cfg := testConfig()
	cfg.MaxLeaves = 5
	a := New(cfg)
	// 100 records in wildly different places would create 100 leaves
	// without the budget.
	recs := make([]stream.Record, 100)
	for i := range recs {
		recs[i] = rec(uint64(i), vclock.Time(float64(i)*0.01), float64(i*10), 0, 0, 0)
	}
	mcs, err := a.Init(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(mcs) > 5 {
		t.Errorf("init produced %d leaves, budget 5", len(mcs))
	}
	if _, err := a.Init(nil); err == nil {
		t.Error("empty init accepted")
	}
}

func TestDefaults(t *testing.T) {
	a := New(Config{})
	if a.cfg.MaxLeaves != 100 || a.cfg.Fanout != 3 || a.cfg.Lambda != 0.25 ||
		a.cfg.RadiusFactor != 2 || a.cfg.NewRadius != 1 || a.cfg.NumMacro != 5 {
		t.Errorf("defaults = %+v", a.cfg)
	}
}
