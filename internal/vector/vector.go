// Package vector provides dense float64 vector math used throughout the
// stream clustering algorithms: element-wise arithmetic, Euclidean
// distances, and feature normalization.
//
// All operations are allocation-conscious: the mutating variants (Add,
// Scale, AXPY) work in place so that hot update loops in the clustering
// algorithms do not allocate per record.
package vector

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two vectors of different lengths
// are combined.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// Vector is a dense vector of float64 components.
type Vector []float64

// New returns a zero vector with dim components.
func New(dim int) Vector {
	return make(Vector, dim)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the number of components.
func (v Vector) Dim() int { return len(v) }

// Add adds other to v in place. The receiver is returned for chaining.
func (v Vector) Add(other Vector) Vector {
	for i := range v {
		v[i] += other[i]
	}
	return v
}

// Sub subtracts other from v in place. The receiver is returned for chaining.
func (v Vector) Sub(other Vector) Vector {
	for i := range v {
		v[i] -= other[i]
	}
	return v
}

// Scale multiplies every component of v by s in place.
func (v Vector) Scale(s float64) Vector {
	for i := range v {
		v[i] *= s
	}
	return v
}

// AXPY computes v += a*x in place (the BLAS "axpy" primitive).
func (v Vector) AXPY(a float64, x Vector) Vector {
	for i := range v {
		v[i] += a * x[i]
	}
	return v
}

// AddSquared adds the element-wise square of x to v in place. It is the
// update primitive for CF2 (squared-sum) cluster feature vectors.
func (v Vector) AddSquared(x Vector) Vector {
	for i := range v {
		v[i] += x[i] * x[i]
	}
	return v
}

// AddSquaredScaled adds a * x_i^2 element-wise to v in place.
func (v Vector) AddSquaredScaled(a float64, x Vector) Vector {
	for i := range v {
		v[i] += a * x[i] * x[i]
	}
	return v
}

// Dot returns the inner product of v and other.
func (v Vector) Dot(other Vector) float64 {
	var sum float64
	for i := range v {
		sum += v[i] * other[i]
	}
	return sum
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Sum returns the sum of all components.
func (v Vector) Sum() float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum
}

// Equal reports whether v and other have identical length and components.
func (v Vector) Equal(other Vector) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and other differ by at most eps in every
// component.
func (v Vector) ApproxEqual(other Vector, eps float64) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-other[i]) > eps {
			return false
		}
	}
	return true
}

// SquaredDistance returns the squared Euclidean distance between a and b.
// It panics if dimensions differ; callers that accept untrusted input
// should use CheckedSquaredDistance.
func SquaredDistance(a, b Vector) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b Vector) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// CheckedSquaredDistance is SquaredDistance with an explicit dimension
// check instead of a runtime panic.
func CheckedSquaredDistance(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return SquaredDistance(a, b), nil
}

// Mean returns the component-wise mean of vs. It returns a zero-length
// vector when vs is empty.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		return Vector{}
	}
	out := New(len(vs[0]))
	for _, v := range vs {
		out.Add(v)
	}
	return out.Scale(1 / float64(len(vs)))
}

// WeightedMean returns the weighted component-wise mean of vs. Weights must
// be the same length as vs and sum to a non-zero value.
func WeightedMean(vs []Vector, weights []float64) (Vector, error) {
	if len(vs) != len(weights) {
		return nil, fmt.Errorf("vector: %d vectors but %d weights", len(vs), len(weights))
	}
	if len(vs) == 0 {
		return Vector{}, nil
	}
	var total float64
	out := New(len(vs[0]))
	for i, v := range vs {
		out.AXPY(weights[i], v)
		total += weights[i]
	}
	if total == 0 {
		return nil, errors.New("vector: weights sum to zero")
	}
	return out.Scale(1 / total), nil
}

// IsFinite reports whether every component is finite (not NaN or Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
