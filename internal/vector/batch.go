package vector

// Blocked many-vs-many kernels: classify a whole block of records
// against a whole matrix of centers in one call.
//
// The one-vs-many kernels (ArgminBelow, SquaredDistancesTo) stream the
// entire centers matrix through cache once per record. That is fine
// while the matrix fits L1/L2 (d = 2–54, a few hundred rows), but a
// high-dimensional snapshot (d = 128–768) is hundreds of KB to a few
// MB: per-record streaming re-reads it from L2/L3 for every record. The
// batch kernels tile records x centers so each centers tile is loaded
// once per record tile and stays cache-resident while every record of
// the tile scans it — the classic mini-batching cache-locality lever
// for stream learners (arXiv:2112.09834) applied to the assign stage.
//
// Two kernels, two contracts:
//
//   - BatchArgminBelow is the DECISION path: exact direct-form
//     accumulation, bit-identical to ArgminBelow per record (same
//     single-accumulator index-order sums, same running-best early
//     exit, same NaN/Inf and first-row tie-break semantics). Tiling
//     only reorders which (record, row) pair is visited when; each
//     row's distance arithmetic and each record's ascending-row-order
//     comparison sequence are unchanged.
//   - BatchSquaredDistancesTo fills the full distance matrix and may
//     use the norm expansion above NormExpansionMinDim dimensions; it
//     is approximate there (see the cancellation analysis below) and
//     must not feed absorb decisions.

// Tiling parameters. A tile of rows is sized so one centers tile plus
// one records tile together stay within an L2-ish budget
// (2 x tileBudgetBytes = 128 KiB), with the row count clamped to
// [minTileRows, maxTileRows]:
//
//   - at d <= 128 the budget allows the full maxTileRows (64), which
//     the sweep measures as at-or-near best from d=2 through d=128;
//   - at d = 768 the budget yields 10 rows, floored at minTileRows
//     (16 rows = 96 KiB per tile) — the measured optimum: 16- and
//     64-row tiles tie at ~13.8k rec/s vs 11.0k for 4-row tiles and
//     6.6k for the per-record scan (256 centers, 256 records);
//   - the cap of maxTileRows bounds bookkeeping overhead at tiny d
//     (beyond ~64 rows the whole matrix fits cache anyway and larger
//     tiles measure flat to slightly worse).
//
// The BenchmarkBatchNearestKernel record-block sweep (d ∈ {2, 32, 128,
// 768} x tile rows ∈ {4..256}) is the measurement behind these
// constants; see DESIGN.md "Batched assign kernel" for the table.
const (
	tileBudgetBytes = 64 << 10
	minTileRows     = 16
	maxTileRows     = 64
)

// tileRows returns the tile height (row count) for the given row width.
func tileRows(cols int) int {
	if cols <= 0 {
		return maxTileRows
	}
	r := tileBudgetBytes / (8 * cols)
	if r < minTileRows {
		return minTileRows
	}
	if r > maxTileRows {
		return maxTileRows
	}
	return r
}

// BatchArgminBelow finds, for every row x of xs, the row of m closest to
// x in squared Euclidean distance. idxs[i] and dists[i] receive exactly
// what ArgminBelow(xs.Row(i), m) returns: the winning row index (or -1
// when no row compares below +Inf) and the winner's exact squared
// distance (or +Inf). Both slices are grown when their capacity is too
// short and returned, so callers can reuse scratch across calls.
//
// The result is bit-identical to the per-record scalar scan: each
// (record, row) distance is the direct form Σ(x_j-c_j)² accumulated in
// index order with a single accumulator (Go never reassociates
// floating-point arithmetic), rows are compared in ascending order under
// strict <, the running-best early exit only abandons rows whose partial
// sum already reached the record's running best (remaining terms are
// ≥ 0 or NaN, which fails both the abandon test and the final
// comparison), and the winning row is always summed to completion. The
// tiling reorders only which pair is computed when — never the
// arithmetic within a pair, nor the ascending row order seen by any one
// record — so index, distance and tie-break match ArgminBelow exactly.
// FuzzBatchNearest enforces this differentially, NaN/±Inf/-0 included.
func BatchArgminBelow(idxs []int, dists []float64, xs, m Matrix) ([]int, []float64) {
	if cap(idxs) < xs.Rows {
		idxs = make([]int, xs.Rows)
	}
	idxs = idxs[:xs.Rows]
	if cap(dists) < xs.Rows {
		dists = make([]float64, xs.Rows)
	}
	dists = dists[:xs.Rows]
	t := tileRows(m.Cols)
	batchArgminTiled(idxs, dists, xs, m, t, t)
	return idxs, dists
}

// batchArgminTiled is BatchArgminBelow with explicit record-tile (rt)
// and centers-tile (ct) heights; the benchmark sweeps them.
//
// Within a tile, each record scans the tile's centers four rows at a
// time: the four rows share each x[j] load and carry four INDEPENDENT
// accumulator chains, so the floating-point adds of four pairs overlap
// in the pipeline instead of serializing on one accumulator's latency —
// the ILP lever the one-vs-many kernel cannot use, because bit-identity
// pins each single pair to one sequential accumulator. Each pair's own
// accumulation stays exactly that sequential index-order chain; only
// WHICH pairs are in flight together changes.
//
// Early exit in the four-row group is conservative: the group is
// abandoned only when all four partial sums have reached the record's
// running best (checked every 4 dims, like the one-vs-many kernel). A
// row the scalar scan would have abandoned earlier may be summed to
// completion here — wasted work, never a different decision: a full
// exact sum fails the final strict-< comparison exactly when the scalar
// scan's abandonment predicted it would. NaN partial sums fail the
// abandon test (NaN >= x is false), so a NaN row keeps the group alive
// and falls through to the (failing) final comparison, as in the scalar
// scan. Winners are compared in ascending row order — groups ascend,
// and the four comparisons after the group run in row order against the
// possibly-just-updated best — preserving the first-row tie-break.
func batchArgminTiled(idxs []int, dists []float64, xs, m Matrix, rt, ct int) {
	for i := range idxs {
		idxs[i] = -1
		dists[i] = inf
	}
	if xs.Rows == 0 || m.Rows == 0 {
		return
	}
	xcols, cols := xs.Cols, m.Cols
	for r0 := 0; r0 < xs.Rows; r0 += rt {
		r1 := min(r0+rt, xs.Rows)
		for c0 := 0; c0 < m.Rows; c0 += ct {
			c1 := min(c0+ct, m.Rows)
			for r := r0; r < r1; r++ {
				x := xs.Data[r*xcols : r*xcols+xcols]
				best, bestD := idxs[r], dists[r]
				i := c0
				for ; i+4 <= c1; i += 4 {
					row0 := m.Data[i*cols : i*cols+cols]
					row0 = row0[:len(x)] // hoist the bounds check; panics on dim mismatch like SquaredDistance
					row1 := m.Data[(i+1)*cols : (i+1)*cols+cols][:len(x)]
					row2 := m.Data[(i+2)*cols : (i+2)*cols+cols][:len(x)]
					row3 := m.Data[(i+3)*cols : (i+3)*cols+cols][:len(x)]
					var s0, s1, s2, s3 float64
					j := 0
					for ; j+4 <= len(x); j += 4 {
						x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
						d := x0 - row0[j]
						s0 += d * d
						d = x1 - row0[j+1]
						s0 += d * d
						d = x2 - row0[j+2]
						s0 += d * d
						d = x3 - row0[j+3]
						s0 += d * d
						d = x0 - row1[j]
						s1 += d * d
						d = x1 - row1[j+1]
						s1 += d * d
						d = x2 - row1[j+2]
						s1 += d * d
						d = x3 - row1[j+3]
						s1 += d * d
						d = x0 - row2[j]
						s2 += d * d
						d = x1 - row2[j+1]
						s2 += d * d
						d = x2 - row2[j+2]
						s2 += d * d
						d = x3 - row2[j+3]
						s2 += d * d
						d = x0 - row3[j]
						s3 += d * d
						d = x1 - row3[j+1]
						s3 += d * d
						d = x2 - row3[j+2]
						s3 += d * d
						d = x3 - row3[j+3]
						s3 += d * d
						if s0 >= bestD && s1 >= bestD && s2 >= bestD && s3 >= bestD {
							// No row of the group can win anymore; NaN sums
							// fail the test and keep the group alive.
							break
						}
					}
					if j+4 > len(x) {
						for ; j < len(x); j++ {
							xv := x[j]
							d := xv - row0[j]
							s0 += d * d
							d = xv - row1[j]
							s1 += d * d
							d = xv - row2[j]
							s2 += d * d
							d = xv - row3[j]
							s3 += d * d
						}
					} else {
						continue // group abandoned mid-scan: partial sums, no comparison
					}
					if s0 < bestD {
						best, bestD = i, s0
					}
					if s1 < bestD {
						best, bestD = i+1, s1
					}
					if s2 < bestD {
						best, bestD = i+2, s2
					}
					if s3 < bestD {
						best, bestD = i+3, s3
					}
				}
				// Tail rows of the tile: the one-vs-many body verbatim.
				for ; i < c1; i++ {
					row := m.Data[i*cols : i*cols+cols]
					row = row[:len(x)]
					var sum float64
					j := 0
					for ; j+4 <= len(x); j += 4 {
						d0 := x[j] - row[j]
						sum += d0 * d0
						d1 := x[j+1] - row[j+1]
						sum += d1 * d1
						d2 := x[j+2] - row[j+2]
						sum += d2 * d2
						d3 := x[j+3] - row[j+3]
						sum += d3 * d3
						if sum >= bestD {
							break
						}
					}
					if j+4 > len(x) {
						for ; j < len(x); j++ {
							d := x[j] - row[j]
							sum += d * d
						}
					}
					if sum < bestD {
						best, bestD = i, sum
					}
				}
				idxs[r], dists[r] = best, bestD
			}
		}
	}
}

// NormExpansionMinDim is the dimensionality at or above which
// BatchSquaredDistancesTo switches from the exact direct form to the
// norm expansion |x-c|² = |x|² - 2·x·c + |c|².
//
// The tradeoff is measured, not assumed (BenchmarkBatchDistanceForm
// sweeps both forms across dimensions): per row the direct form costs d
// subtractions, d multiplies and d adds, while the expansion costs d
// multiplies and d adds plus O(1) — a ~3:2 flop advantage that only
// overcomes the expansion's extra norm loads and writes once the inner
// loop is long enough. On the reference container the crossover sits
// between d=16 and d=32; below it the direct form is both faster AND
// exact, so the constant is the conservative end of the measured range.
//
// Accuracy bound (why the expansion never feeds decisions): each of the
// three terms is computed to relative accuracy O(d·ε) of its own
// magnitude, so the absolute error in the combination is
// O(d·ε·max(|x|², |c|²)) and the RELATIVE error of the result is
//
//	O(d·ε) · max(|x|², |c|²) / |x-c|²
//
// which is unbounded as |x-c| → 0 with |x| ≈ |c| large — catastrophic
// cancellation. At d=768 with unit-scale embeddings and |x-c| ~ 1e-3·|x|
// the relative error reaches ~1e-9 and grows quadratically as the pair
// gets closer; TestNormExpansionErrorHighDim quantifies both the
// well-separated regime (relative error < NormExpansionRelError) and
// the cancellation blow-up.
const NormExpansionMinDim = 32

// NormExpansionRelError bounds the relative error of the norm-expansion
// form for WELL-SEPARATED pairs, defined as |x-c|² ≥ max(|x|², |c|²)/4
// (distance comparable to the operand scale). It is validated at d=768
// by TestNormExpansionErrorHighDim. Inside that separation the expansion
// is safe for pruning and diagnostics; closer pairs lose relative
// accuracy proportionally to max(|x|²,|c|²)/|x-c|².
const NormExpansionRelError = 1e-10

// BatchSquaredDistancesTo writes the squared Euclidean distance from
// every row of xs to every row of m into dst (record-major:
// dst[i*m.Rows+k] is |xs.Row(i) - m.Row(k)|²), allocating when dst is
// too short, and returns dst. norms must be m.RowNorms.
//
// At m.Cols >= NormExpansionMinDim it uses the norm expansion — one
// inner product per pair instead of subtract-square-accumulate — and is
// then approximate (see NormExpansionMinDim); below the threshold it
// uses the exact direct form, which measures faster there. Both forms
// run over the same records x centers tiling as BatchArgminBelow.
func BatchSquaredDistancesTo(dst []float64, xs, m Matrix, norms []float64) []float64 {
	n := xs.Rows * m.Rows
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	t := tileRows(m.Cols)
	expand := m.Cols >= NormExpansionMinDim
	for r0 := 0; r0 < xs.Rows; r0 += t {
		r1 := min(r0+t, xs.Rows)
		for c0 := 0; c0 < m.Rows; c0 += t {
			c1 := min(c0+t, m.Rows)
			for r := r0; r < r1; r++ {
				x := xs.Row(r)
				out := dst[r*m.Rows : (r+1)*m.Rows]
				if expand {
					xx := dot(x, x)
					for i := c0; i < c1; i++ {
						out[i] = xx - 2*dot(x, m.Row(i)) + norms[i]
					}
					continue
				}
				for i := c0; i < c1; i++ {
					row := m.Data[i*m.Cols : i*m.Cols+m.Cols]
					row = row[:len(x)]
					var sum float64
					for j := range x {
						d := x[j] - row[j]
						sum += d * d
					}
					out[i] = sum
				}
			}
		}
	}
	return dst
}
