package vector

import "fmt"

// Matrix is a dense row-major matrix: row i occupies
// Data[i*Cols : (i+1)*Cols]. It is the flat storage behind the one-vs-many
// distance kernels: keeping all rows in one contiguous allocation turns
// the per-row pointer chase of a []Vector into a sequential sweep the
// hardware prefetcher can follow, and lets the kernels run their inner
// loops over re-sliced rows with bounds checks hoisted out.
//
// Fields are exported so a Matrix travels over gob inside broadcast
// snapshots.
type Matrix struct {
	Data []float64
	Rows int
	Cols int
}

// NewMatrix returns a zeroed rows x cols matrix in one allocation.
func NewMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vector: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// MatrixFromRows packs the given equal-length vectors into a fresh
// row-major matrix. An empty input yields a 0x0 matrix.
func MatrixFromRows(rows []Vector) (Matrix, error) {
	if len(rows) == 0 {
		return Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return Matrix{}, fmt.Errorf("%w: row %d has %d components, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Row returns row i as a Vector view sharing the matrix storage. The
// returned slice has capacity clamped to the row, so appends cannot
// clobber the next row.
func (m Matrix) Row(i int) Vector {
	off := i * m.Cols
	return Vector(m.Data[off : off+m.Cols : off+m.Cols])
}

// SetRow copies v into row i.
func (m Matrix) SetRow(i int, v Vector) {
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := m
	out.Data = append([]float64(nil), m.Data...)
	return out
}

// RowNorms writes the squared L2 norm of each row into dst (allocating
// when dst is too short) and returns it. These are the precomputed |c|²
// terms of the SquaredDistancesTo expansion.
func (m Matrix) RowNorms(dst []float64) []float64 {
	if cap(dst) < m.Rows {
		dst = make([]float64, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		dst[i] = dot(m.Row(i), m.Row(i))
	}
	return dst
}

// dot is a 4-way unrolled inner product with four independent
// accumulators. The re-slicing of b to a's length hoists the bounds
// check out of the loop; the independent accumulators let the CPU run
// the multiply-adds in parallel. Summation order differs from a naive
// loop, which is fine here: dot feeds the expansion kernel, whose
// results are approximate by construction (see SquaredDistancesTo).
func dot(a, b Vector) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// SquaredDistancesTo writes the squared Euclidean distance from x to
// every row of m into dst (allocating when dst is too short) and returns
// it, using the expansion
//
//	|x - c|² = |x|² - 2·x·c + |c|²
//
// with the |c|² terms precomputed (norms must be m.RowNorms). Per row it
// costs one inner product instead of the subtract-square-accumulate of
// the direct form — fewer operations and a blocked, prefetch-friendly
// sweep over the flat matrix.
//
// The expansion reorders floating-point operations, so results can
// differ from the direct form by cancellation error (large when
// |x| ≈ |c| >> |x-c|). Use it where approximate distances are acceptable
// (diagnostics, pruning, throughput measurements); decision paths that
// must reproduce the scalar argmin bit-for-bit use ArgminBelow instead.
func SquaredDistancesTo(dst []float64, x Vector, m Matrix, norms []float64) []float64 {
	if cap(dst) < m.Rows {
		dst = make([]float64, m.Rows)
	}
	dst = dst[:m.Rows]
	xx := dot(x, x)
	for i := 0; i < m.Rows; i++ {
		dst[i] = xx - 2*dot(x, m.Row(i)) + norms[i]
	}
	return dst
}

// ArgminBelow returns the index of the row of m closest to x in squared
// Euclidean distance, together with that exact squared distance. It
// returns (-1, +Inf) when the matrix has no rows or no row compares
// below +Inf (every distance NaN).
//
// The decision is bit-identical to the reference scalar scan
//
//	for i, c := range rows { if SquaredDistance(x, c) < best { ... } }
//
// because each row's distance is accumulated in index order with a
// single accumulator (Go never reassociates floating-point arithmetic),
// and the early exit only abandons rows whose partial sum already
// reaches the running best: remaining terms are ≥ 0 (or NaN), so the
// full sum could not have compared below the best either. NaN partial
// sums fail the abandon test and fail the final comparison, exactly as
// in the scalar scan. The winning row is always summed to completion, so
// the returned distance is the exact scalar value, fit for the √d
// boundary comparison.
func ArgminBelow(x Vector, m Matrix) (int, float64) {
	return ArgminBelowBound(x, m, inf)
}

// ArgminBelowBound is ArgminBelow with the running best seeded at bound:
// only rows whose exact squared distance compares strictly below bound
// can win, and the early exit prunes against bound from the first row.
// It returns (-1, bound) when no row beats the bound. Callers scanning
// several candidate sets against one shared best (e.g. the tree search's
// leaf visits) thread the winner's distance through as the next bound,
// which reproduces one continuous scalar scan over the concatenated
// candidates.
func ArgminBelowBound(x Vector, m Matrix, bound float64) (int, float64) {
	best := -1
	bestD := bound
	cols := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*cols : i*cols+cols]
		row = row[:len(x)] // hoist the bounds check; panics on dim mismatch like SquaredDistance
		var sum float64
		j := 0
		for ; j+4 <= len(x); j += 4 {
			d0 := x[j] - row[j]
			sum += d0 * d0
			d1 := x[j+1] - row[j+1]
			sum += d1 * d1
			d2 := x[j+2] - row[j+2]
			sum += d2 * d2
			d3 := x[j+3] - row[j+3]
			sum += d3 * d3
			if sum >= bestD {
				// Running-best early exit: terms are non-negative, so
				// this row can no longer win. NaN sums fall through to
				// the (failing) final comparison instead.
				break
			}
		}
		if j+4 > len(x) {
			for ; j < len(x); j++ {
				d := x[j] - row[j]
				sum += d * d
			}
		}
		if sum < bestD {
			best, bestD = i, sum
		}
	}
	return best, bestD
}

// inf avoids importing math for a constant.
var inf = func() float64 {
	one := 1.0
	zero := one - one
	return one / zero
}()
