package vector

import (
	"errors"
	"math"
)

// Normalizer standardizes features to zero mean and unit variance, matching
// the preprocessing applied to the paper's datasets ("we normalize each
// feature of the three datasets to have zero mean and unit variance").
//
// A Normalizer is fit once on a sample and then applied record-by-record;
// it can also be updated incrementally (Welford's algorithm) for streaming
// use before being frozen.
type Normalizer struct {
	mean  Vector
	m2    Vector // sum of squared deviations
	count int
	// std caches the per-feature standard deviation after Freeze.
	std    Vector
	frozen bool
}

// NewNormalizer returns an empty normalizer for dim-dimensional records.
func NewNormalizer(dim int) *Normalizer {
	return &Normalizer{
		mean: New(dim),
		m2:   New(dim),
	}
}

// Observe folds one record into the running mean/variance estimate using
// Welford's online algorithm. Observe after Freeze returns an error.
func (n *Normalizer) Observe(x Vector) error {
	if n.frozen {
		return errors.New("vector: normalizer is frozen")
	}
	if len(x) != len(n.mean) {
		return ErrDimensionMismatch
	}
	n.count++
	for i, xi := range x {
		delta := xi - n.mean[i]
		n.mean[i] += delta / float64(n.count)
		n.m2[i] += delta * (xi - n.mean[i])
	}
	return nil
}

// Fit observes every vector in sample, replacing any previous state.
func (n *Normalizer) Fit(sample []Vector) error {
	if len(sample) == 0 {
		return errors.New("vector: empty sample")
	}
	dim := len(sample[0])
	n.mean = New(dim)
	n.m2 = New(dim)
	n.count = 0
	n.frozen = false
	n.std = nil
	for _, v := range sample {
		if err := n.Observe(v); err != nil {
			return err
		}
	}
	n.Freeze()
	return nil
}

// Freeze finalizes the statistics; after Freeze, Apply may be used.
// Features with zero variance are given std 1 so they normalize to 0.
func (n *Normalizer) Freeze() {
	n.std = New(len(n.mean))
	for i := range n.std {
		if n.count > 1 {
			n.std[i] = math.Sqrt(n.m2[i] / float64(n.count-1))
		}
		if n.std[i] == 0 {
			n.std[i] = 1
		}
	}
	n.frozen = true
}

// Count returns the number of observed records.
func (n *Normalizer) Count() int { return n.count }

// Mean returns a copy of the current per-feature mean.
func (n *Normalizer) Mean() Vector { return n.mean.Clone() }

// Std returns a copy of the per-feature standard deviation. It is only
// valid after Freeze or Fit.
func (n *Normalizer) Std() Vector {
	if n.std == nil {
		return nil
	}
	return n.std.Clone()
}

// Apply standardizes x in place: x_i = (x_i - mean_i) / std_i.
func (n *Normalizer) Apply(x Vector) error {
	if !n.frozen {
		return errors.New("vector: normalizer not frozen; call Fit or Freeze first")
	}
	if len(x) != len(n.mean) {
		return ErrDimensionMismatch
	}
	for i := range x {
		x[i] = (x[i] - n.mean[i]) / n.std[i]
	}
	return nil
}

// ApplyCopy returns a standardized copy of x, leaving x untouched.
func (n *Normalizer) ApplyCopy(x Vector) (Vector, error) {
	out := x.Clone()
	if err := n.Apply(out); err != nil {
		return nil, err
	}
	return out, nil
}
