package vector

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkNearestKernel compares the flat one-vs-many argmin kernel
// against the scalar per-row SquaredDistance scan it replaces, across
// the dimensionalities of the paper's datasets (8 = Covertype-lite,
// 34 = KDD99, 54 = Covertype) and snapshot sizes of 100–1000
// micro-clusters.
func BenchmarkNearestKernel(b *testing.B) {
	cases := []struct{ dims, rows int }{
		{8, 100}, {34, 100}, {54, 100}, {8, 1000}, {34, 1000}, {54, 1000},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(int64(c.dims*7919 + c.rows)))
		rows := make([]Vector, c.rows)
		for i := range rows {
			rows[i] = New(c.dims)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * 10
			}
		}
		m, err := MatrixFromRows(rows)
		if err != nil {
			b.Fatal(err)
		}
		x := New(c.dims)
		for j := range x {
			x[j] = rng.NormFloat64() * 10
		}
		name := fmt.Sprintf("dim%d-mc%d", c.dims, c.rows)
		b.Run(name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx, _ := ArgminBelow(x, m)
				if idx < 0 {
					b.Fatal("no winner")
				}
			}
		})
		b.Run(name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx, _ := scalarArgmin(x, rows)
				if idx < 0 {
					b.Fatal("no winner")
				}
			}
		})
	}
}
