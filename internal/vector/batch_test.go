package vector

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randMatrix fills a rows x cols matrix from rng at the given scale.
func randMatrix(rng *rand.Rand, rows, cols int, scale float64) Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}

func TestBatchArgminMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Sizes straddle the tile boundaries for both small and large dims:
	// tileRows(2) = 64, tileRows(768) = 4.
	for trial := 0; trial < 60; trial++ {
		dims := []int{1, 2, 3, 7, 32, 128, 768}[trial%7]
		n := rng.Intn(2*tileRows(dims) + 3)
		rows := rng.Intn(2*tileRows(dims) + 3)
		xs := randMatrix(rng, n, dims, 5)
		m := randMatrix(rng, rows, dims, 5)
		// Duplicate a center occasionally to force exact ties.
		if rows > 1 && trial%3 == 0 {
			copy(m.Data[(rows-1)*dims:], m.Data[:dims])
		}
		idxs, dists := BatchArgminBelow(nil, nil, xs, m)
		for i := 0; i < n; i++ {
			wantIdx, wantD := ArgminBelow(xs.Row(i), m)
			if idxs[i] != wantIdx || dists[i] != wantD {
				t.Fatalf("trial %d (d=%d, n=%d, rows=%d) record %d: batch (%d, %v) vs scalar (%d, %v)",
					trial, dims, n, rows, i, idxs[i], dists[i], wantIdx, wantD)
			}
		}
	}
}

func TestBatchArgminScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	xs := randMatrix(rng, 9, 16, 3)
	m := randMatrix(rng, 21, 16, 3)
	idxs := make([]int, 0, 32)
	dists := make([]float64, 0, 32)
	outI, outD := BatchArgminBelow(idxs, dists, xs, m)
	if &outI[0] != &idxs[:1][0] || &outD[0] != &dists[:1][0] {
		t.Error("BatchArgminBelow reallocated despite sufficient capacity")
	}
	if len(outI) != 9 || len(outD) != 9 {
		t.Fatalf("lengths = %d, %d, want 9", len(outI), len(outD))
	}
}

func TestBatchArgminEmptyBlocks(t *testing.T) {
	m := NewMatrix(3, 4)
	// Zero records: nothing written, empty result.
	idxs, dists := BatchArgminBelow(nil, nil, Matrix{Cols: 4}, m)
	if len(idxs) != 0 || len(dists) != 0 {
		t.Errorf("zero records: %v %v", idxs, dists)
	}
	// Zero centers: every record unmatched, like ArgminBelow.
	xs := NewMatrix(5, 4)
	idxs, dists = BatchArgminBelow(nil, nil, xs, Matrix{Cols: 4})
	for i := range idxs {
		if idxs[i] != -1 || !math.IsInf(dists[i], 1) {
			t.Errorf("record %d vs empty centers: (%d, %v)", i, idxs[i], dists[i])
		}
	}
}

func TestBatchSquaredDistancesToBothForms(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// Below the threshold: direct form, exact.
	xs := randMatrix(rng, 7, NormExpansionMinDim-1, 4)
	m := randMatrix(rng, 11, NormExpansionMinDim-1, 4)
	dst := BatchSquaredDistancesTo(nil, xs, m, m.RowNorms(nil))
	for i := 0; i < xs.Rows; i++ {
		for k := 0; k < m.Rows; k++ {
			if want := SquaredDistance(xs.Row(i), m.Row(k)); dst[i*m.Rows+k] != want {
				t.Fatalf("direct form (%d,%d): %v != %v", i, k, dst[i*m.Rows+k], want)
			}
		}
	}
	// At and above the threshold: expansion, approximately equal.
	xs = randMatrix(rng, 7, 128, 4)
	m = randMatrix(rng, 11, 128, 4)
	dst = BatchSquaredDistancesTo(dst, xs, m, m.RowNorms(nil))
	for i := 0; i < xs.Rows; i++ {
		for k := 0; k < m.Rows; k++ {
			want := SquaredDistance(xs.Row(i), m.Row(k))
			if math.Abs(dst[i*m.Rows+k]-want) > 1e-9*(1+want) {
				t.Fatalf("expansion (%d,%d): %v vs %v", i, k, dst[i*m.Rows+k], want)
			}
		}
	}
}

// TestNormExpansionErrorHighDim quantifies the norm-expansion error at
// d=768 in the two regimes the NormExpansionMinDim docs promise:
// well-separated pairs stay within NormExpansionRelError relative error,
// and the |x| ≈ |c| >> |x-c| cancellation regime blows past it — the
// measured reason the decision path (BatchArgminBelow) never uses the
// expansion.
func TestNormExpansionErrorHighDim(t *testing.T) {
	const dim = 768
	rng := rand.New(rand.NewSource(20))

	// Well-separated: records and centers drawn at the same scale, with
	// |x-c|² comparable to |x|². Relative error must honor the bound.
	xs := randMatrix(rng, 16, dim, 1)
	m := randMatrix(rng, 16, dim, 1)
	dst := BatchSquaredDistancesTo(nil, xs, m, m.RowNorms(nil))
	var worstSep float64
	for i := 0; i < xs.Rows; i++ {
		for k := 0; k < m.Rows; k++ {
			want := SquaredDistance(xs.Row(i), m.Row(k))
			xx, cc := dot(xs.Row(i), xs.Row(i)), dot(m.Row(k), m.Row(k))
			if want < max(xx, cc)/4 {
				continue // not in the documented separation regime
			}
			if rel := math.Abs(dst[i*m.Rows+k]-want) / want; rel > worstSep {
				worstSep = rel
			}
		}
	}
	if worstSep > NormExpansionRelError {
		t.Errorf("well-separated relative error %.3e exceeds documented bound %.3e", worstSep, NormExpansionRelError)
	}
	t.Logf("d=%d well-separated worst relative error: %.3e (bound %.3e)", dim, worstSep, NormExpansionRelError)

	// Cancellation: centers = record + tiny offset, both with large norm
	// (|x| ≈ |c| ≈ sqrt(d)·10 while |x-c| ≈ 1e-6). The expansion
	// subtracts two ~|x|² quantities to recover a ~1e-12 difference.
	x := New(dim)
	for j := range x {
		x[j] = 10 + rng.NormFloat64()
	}
	close := NewMatrix(4, dim)
	for i := 0; i < close.Rows; i++ {
		copy(close.Data[i*dim:(i+1)*dim], x)
		close.Data[i*dim+i] += 1e-6 // |x-c|² = 1e-12
	}
	xone := Matrix{Data: x, Rows: 1, Cols: dim}
	dst = BatchSquaredDistancesTo(dst, xone, close, close.RowNorms(nil))
	var worstClose float64
	for k := 0; k < close.Rows; k++ {
		want := SquaredDistance(x, close.Row(k))
		rel := math.Abs(dst[k]-want) / want
		if rel > worstClose {
			worstClose = rel
		}
	}
	t.Logf("d=%d cancellation worst relative error: %.3e", dim, worstClose)
	if worstClose < 1e-4 {
		t.Errorf("cancellation regime relative error %.3e unexpectedly small — the exactness argument for the decision path assumes this regime is lossy", worstClose)
	}
}

// FuzzBatchNearest is the differential fuzzer for the blocked
// many-vs-many kernel: for arbitrary record blocks and center matrices —
// NaN, ±Inf, -0, denormals, duplicate rows, empty blocks and sizes
// straddling the tile boundaries included — BatchArgminBelow must agree
// exactly with the per-record scalar SquaredDistance scan on every
// winning index and distance.
func FuzzBatchNearest(f *testing.F) {
	f.Add(uint8(3), uint8(5), uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(0), uint8(7), uint8(3), []byte{9})           // empty record block
	f.Add(uint8(5), uint8(0), uint8(3), []byte{})            // empty centers
	f.Add(uint8(65), uint8(67), uint8(2), []byte{0xff, 0})   // straddles tileRows(2)=64
	f.Add(uint8(9), uint8(5), uint8(255), []byte{0xf8, 0x7f}) // high dim, tiny tiles
	f.Fuzz(func(t *testing.T, nRecs, nRows, nCols uint8, raw []byte) {
		n := int(nRecs % 80)
		rows := int(nRows % 80)
		cols := int(nCols)%200 + 1
		specials := []float64{0, math.Copysign(0, -1), 1, -1, math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300, 5e-324}
		next := func(i int) float64 {
			if len(raw) == 0 {
				return float64(i%7) - 3
			}
			off := (i * 8) % len(raw)
			var buf [8]byte
			for j := 0; j < 8; j++ {
				buf[j] = raw[(off+j)%len(raw)]
			}
			bits := binary.LittleEndian.Uint64(buf[:])
			switch bits % 4 {
			case 0:
				return specials[int(bits/4)%len(specials)]
			case 1:
				return float64(int64(bits)%1000) / 8
			default:
				return math.Float64frombits(bits)
			}
		}
		k := 0
		fill := func(m Matrix) {
			for i := range m.Data {
				m.Data[i] = next(k)
				k++
			}
		}
		xs := Matrix{Data: make([]float64, n*cols), Rows: n, Cols: cols}
		m := Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
		fill(xs)
		fill(m)
		// Duplicate rows with probability ~1/2 to force exact ties.
		if rows > 1 && len(raw) > 0 && raw[0]%2 == 0 {
			copy(m.Data[(rows-1)*cols:], m.Data[:cols])
		}
		idxs, dists := BatchArgminBelow(nil, nil, xs, m)
		rowVecs := make([]Vector, rows)
		for i := range rowVecs {
			rowVecs[i] = m.Row(i)
		}
		for i := 0; i < n; i++ {
			wantIdx, wantD := scalarArgmin(xs.Row(i), rowVecs)
			if idxs[i] != wantIdx {
				t.Fatalf("record %d argmin: batch %d vs scalar %d (n=%d rows=%d cols=%d)", i, idxs[i], wantIdx, n, rows, cols)
			}
			if wantIdx >= 0 && idxs[i] >= 0 && dists[i] != wantD && !(math.IsNaN(dists[i]) && math.IsNaN(wantD)) {
				t.Fatalf("record %d distance: batch %v vs scalar %v at row %d", i, dists[i], wantD, idxs[i])
			}
		}
	})
}

// BenchmarkBatchNearestKernel sweeps the blocked many-vs-many argmin
// across the dimension regimes the assign path sees (d=2 toy, d=32/54
// paper datasets, d=128/768 embedding streams) and across record-tile
// heights, against the per-record one-vs-many kernel it replaces. The
// tileRows constants in batch.go are chosen from this table.
func BenchmarkBatchNearestKernel(b *testing.B) {
	const centers = 256
	for _, dim := range []int{2, 32, 128, 768} {
		rng := rand.New(rand.NewSource(int64(dim)))
		n := 1024
		if dim >= 768 {
			n = 256
		}
		xs := randMatrix(rng, n, dim, 5)
		m := randMatrix(rng, centers, dim, 5)
		idxs := make([]int, n)
		dists := make([]float64, n)
		b.Run(fmt.Sprintf("d%d/perRecord", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					idxs[r], dists[r] = ArgminBelow(xs.Row(r), m)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
		})
		for _, rt := range []int{4, 16, 64, 256} {
			b.Run(fmt.Sprintf("d%d/tile%d", dim, rt), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					batchArgminTiled(idxs, dists, xs, m, rt, rt)
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
			})
		}
		b.Run(fmt.Sprintf("d%d/auto", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BatchArgminBelow(idxs, dists, xs, m)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
		})
	}
}

// BenchmarkBatchDistanceForm measures the direct-form vs norm-expansion
// tradeoff across dimensions — the measurement behind
// NormExpansionMinDim. Both forms run over the same tiling; only the
// inner pair loop differs.
func BenchmarkBatchDistanceForm(b *testing.B) {
	const n, centers = 256, 256
	for _, dim := range []int{2, 8, 16, 32, 64, 128, 768} {
		rng := rand.New(rand.NewSource(int64(dim) + 1))
		xs := randMatrix(rng, n, dim, 5)
		m := randMatrix(rng, centers, dim, 5)
		norms := m.RowNorms(nil)
		dst := make([]float64, n*centers)
		direct := func() {
			t := tileRows(dim)
			for r0 := 0; r0 < xs.Rows; r0 += t {
				r1 := min(r0+t, xs.Rows)
				for c0 := 0; c0 < m.Rows; c0 += t {
					c1 := min(c0+t, m.Rows)
					for r := r0; r < r1; r++ {
						x := xs.Row(r)
						out := dst[r*m.Rows : (r+1)*m.Rows]
						for i := c0; i < c1; i++ {
							row := m.Row(i)
							var sum float64
							for j := range x {
								d := x[j] - row[j]
								sum += d * d
							}
							out[i] = sum
						}
					}
				}
			}
		}
		expansion := func() {
			t := tileRows(dim)
			for r0 := 0; r0 < xs.Rows; r0 += t {
				r1 := min(r0+t, xs.Rows)
				for c0 := 0; c0 < m.Rows; c0 += t {
					c1 := min(c0+t, m.Rows)
					for r := r0; r < r1; r++ {
						x := xs.Row(r)
						out := dst[r*m.Rows : (r+1)*m.Rows]
						xx := dot(x, x)
						for i := c0; i < c1; i++ {
							out[i] = xx - 2*dot(x, m.Row(i)) + norms[i]
						}
					}
				}
			}
		}
		b.Run(fmt.Sprintf("d%d/direct", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				direct()
			}
		})
		b.Run(fmt.Sprintf("d%d/expansion", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				expansion()
			}
		})
	}
}
