package vector

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestMatrixRowRoundTrip(t *testing.T) {
	m := NewMatrix(3, 4)
	for i := 0; i < 3; i++ {
		v := New(4)
		for j := range v {
			v[j] = float64(i*10 + j)
		}
		m.SetRow(i, v)
	}
	if m.Row(2)[3] != 23 {
		t.Fatalf("Row(2)[3] = %v, want 23", m.Row(2)[3])
	}
	// Row views share storage with the matrix.
	m.Row(1)[0] = -1
	if m.Data[4] != -1 {
		t.Error("Row view does not alias matrix storage")
	}
	// Appending to a row view must not clobber the next row.
	_ = append(m.Row(0), 99)
	if m.Data[4] != -1 {
		t.Error("append to row view clobbered the next row")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.Row(1)[1] != 4 {
		t.Fatalf("unexpected matrix %+v", m)
	}
	if _, err := MatrixFromRows([]Vector{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	empty, err := MatrixFromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("empty rows: %v %+v", err, empty)
	}
}

func TestRowNormsMatchDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(7, 13)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	norms := m.RowNorms(nil)
	for i := 0; i < m.Rows; i++ {
		want := dot(m.Row(i), m.Row(i))
		if norms[i] != want {
			t.Errorf("norm[%d] = %v, want %v", i, norms[i], want)
		}
	}
	// Reuses a caller buffer with enough capacity.
	buf := make([]float64, 0, 16)
	out := m.RowNorms(buf)
	if &out[0] != &buf[:1][0] {
		t.Error("RowNorms reallocated despite sufficient capacity")
	}
}

func TestSquaredDistancesToApproximatesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range []int{1, 3, 8, 34, 54} {
		m := NewMatrix(25, dims)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * 10
		}
		x := New(dims)
		for j := range x {
			x[j] = rng.NormFloat64() * 10
		}
		norms := m.RowNorms(nil)
		dst := SquaredDistancesTo(nil, x, m, norms)
		for i := 0; i < m.Rows; i++ {
			want := SquaredDistance(x, m.Row(i))
			if math.Abs(dst[i]-want) > 1e-9*(1+want) {
				t.Errorf("dims %d row %d: expansion %v vs direct %v", dims, i, dst[i], want)
			}
		}
	}
}

// scalarArgmin is the reference the assign path used before the flat
// kernels: a plain scan comparing SquaredDistance per row under strict <.
func scalarArgmin(x Vector, rows []Vector) (int, float64) {
	best := -1
	bestD := math.Inf(1)
	for i, c := range rows {
		if d := SquaredDistance(x, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestArgminBelowMatchesScalarScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		dims := 1 + rng.Intn(60)
		n := 1 + rng.Intn(40)
		rows := make([]Vector, n)
		for i := range rows {
			rows[i] = New(dims)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * 5
			}
		}
		// Occasionally duplicate a row to force exact distance ties.
		if n > 1 && rng.Intn(3) == 0 {
			rows[n-1] = rows[rng.Intn(n-1)].Clone()
		}
		m, err := MatrixFromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		x := New(dims)
		for j := range x {
			x[j] = rng.NormFloat64() * 5
		}
		wantIdx, wantD := scalarArgmin(x, rows)
		gotIdx, gotD := ArgminBelow(x, m)
		if gotIdx != wantIdx || gotD != wantD {
			t.Fatalf("trial %d (dims %d, n %d): kernel (%d, %v) vs scalar (%d, %v)",
				trial, dims, n, gotIdx, gotD, wantIdx, wantD)
		}
	}
}

func TestArgminBelowEmptyAndNaN(t *testing.T) {
	if idx, d := ArgminBelow(Vector{1}, Matrix{Cols: 1}); idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty matrix: (%d, %v)", idx, d)
	}
	// An all-NaN record compares below nothing: no winner, like the
	// scalar scan.
	m, _ := MatrixFromRows([]Vector{{1, 2}, {3, 4}})
	if idx, _ := ArgminBelow(Vector{math.NaN(), math.NaN()}, m); idx != -1 {
		t.Errorf("NaN record found winner %d", idx)
	}
	// A NaN row loses; finite rows still win.
	m2, _ := MatrixFromRows([]Vector{{math.NaN(), 0}, {3, 4}})
	idx, d := ArgminBelow(Vector{3, 4}, m2)
	if idx != 1 || d != 0 {
		t.Errorf("NaN row: (%d, %v), want (1, 0)", idx, d)
	}
}

// FuzzFlatNearest is the differential fuzz test for the flat assign
// kernel: for arbitrary matrices and records — including NaN and ±Inf
// components — ArgminBelow must agree exactly with the scalar
// SquaredDistance scan on both the winning index and the winning
// distance (the absorbable decision is a comparison on that distance, so
// index + distance equality implies absorbable equality for any
// boundary).
func FuzzFlatNearest(f *testing.F) {
	f.Add(uint8(3), uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(1), []byte{0xff, 0xf8, 0, 0, 0, 0, 0, 1})
	f.Add(uint8(5), uint8(34), []byte{})
	f.Add(uint8(0), uint8(7), []byte{9})
	f.Fuzz(func(t *testing.T, nRows, nCols uint8, raw []byte) {
		rows := int(nRows % 40)
		cols := int(nCols%60) + 1
		specials := []float64{0, 1, -1, math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300, 5e-324}
		next := func(i int) float64 {
			if len(raw) == 0 {
				return float64(i%7) - 3
			}
			off := (i * 8) % len(raw)
			var buf [8]byte
			for j := 0; j < 8; j++ {
				buf[j] = raw[(off+j)%len(raw)]
			}
			bits := binary.LittleEndian.Uint64(buf[:])
			// Mix raw float bit patterns with special values so NaN/Inf
			// and near-tie duplicates show up often.
			switch bits % 4 {
			case 0:
				return specials[int(bits/4)%len(specials)]
			case 1:
				return float64(int64(bits)%1000) / 8
			default:
				return math.Float64frombits(bits)
			}
		}
		vecs := make([]Vector, rows)
		k := 0
		for i := range vecs {
			vecs[i] = New(cols)
			for j := range vecs[i] {
				vecs[i][j] = next(k)
				k++
			}
		}
		// Duplicate rows with probability ~1/2 to force exact ties.
		if rows > 1 && len(raw) > 0 && raw[0]%2 == 0 {
			vecs[rows-1] = vecs[0].Clone()
		}
		x := New(cols)
		for j := range x {
			x[j] = next(k)
			k++
		}
		m, err := MatrixFromRows(vecs)
		if err != nil {
			t.Fatal(err)
		}
		if rows == 0 {
			m.Cols = cols
		}
		wantIdx, wantD := scalarArgmin(x, vecs)
		gotIdx, gotD := ArgminBelow(x, m)
		if gotIdx != wantIdx {
			t.Fatalf("argmin: kernel %d vs scalar %d (rows %d, cols %d)\nx=%v\nrows=%v", gotIdx, wantIdx, rows, cols, x, vecs)
		}
		if gotIdx >= 0 && gotD != wantD && !(math.IsNaN(gotD) && math.IsNaN(wantD)) {
			t.Fatalf("distance: kernel %v vs scalar %v at row %d", gotD, wantD, gotIdx)
		}
	})
}
