package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if v.Dim() != 4 {
		t.Fatalf("Dim() = %d, want 4", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("component %d = %v, want 0", i, x)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("mutating clone changed original: %v", v)
	}
}

func TestAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(Vector{1, 1, 1})
	if !v.Equal(Vector{2, 3, 4}) {
		t.Errorf("Add: got %v", v)
	}
	v.Sub(Vector{2, 3, 4})
	if !v.Equal(Vector{0, 0, 0}) {
		t.Errorf("Sub: got %v", v)
	}
}

func TestScale(t *testing.T) {
	v := Vector{1, -2, 0.5}
	v.Scale(2)
	if !v.Equal(Vector{2, -4, 1}) {
		t.Errorf("Scale: got %v", v)
	}
}

func TestAXPY(t *testing.T) {
	v := Vector{1, 1}
	v.AXPY(3, Vector{2, -1})
	if !v.Equal(Vector{7, -2}) {
		t.Errorf("AXPY: got %v", v)
	}
}

func TestAddSquared(t *testing.T) {
	v := Vector{0, 1}
	v.AddSquared(Vector{3, -2})
	if !v.Equal(Vector{9, 5}) {
		t.Errorf("AddSquared: got %v", v)
	}
}

func TestAddSquaredScaled(t *testing.T) {
	v := Vector{0, 0}
	v.AddSquaredScaled(0.5, Vector{2, 4})
	if !v.Equal(Vector{2, 8}) {
		t.Errorf("AddSquaredScaled: got %v", v)
	}
}

func TestDotNormSum(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(Vector{1, 2}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Sum(); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
}

func TestDistances(t *testing.T) {
	a, b := Vector{0, 0}, Vector{3, 4}
	if got := SquaredDistance(a, b); got != 25 {
		t.Errorf("SquaredDistance = %v, want 25", got)
	}
	if got := Distance(a, b); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
}

func TestCheckedSquaredDistanceMismatch(t *testing.T) {
	_, err := CheckedSquaredDistance(Vector{1}, Vector{1, 2})
	if err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestMean(t *testing.T) {
	got := Mean([]Vector{{0, 0}, {2, 4}})
	if !got.Equal(Vector{1, 2}) {
		t.Errorf("Mean = %v, want [1 2]", got)
	}
	if empty := Mean(nil); empty.Dim() != 0 {
		t.Errorf("Mean(nil) = %v, want empty", empty)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]Vector{{0, 0}, {4, 4}}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Vector{1, 1}) {
		t.Errorf("WeightedMean = %v, want [1 1]", got)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean([]Vector{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := WeightedMean([]Vector{{1}, {2}}, []float64{1, -1}); err == nil {
		t.Error("expected zero-weight error")
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestApproxEqual(t *testing.T) {
	a := Vector{1, 2}
	if !a.ApproxEqual(Vector{1.0001, 2}, 0.001) {
		t.Error("expected approx equal")
	}
	if a.ApproxEqual(Vector{1.1, 2}, 0.001) {
		t.Error("expected not approx equal")
	}
	if a.ApproxEqual(Vector{1}, 1) {
		t.Error("different dims must not be approx equal")
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() Vector {
		v := New(8)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		return v
	}
	for i := 0; i < 200; i++ {
		a, b, c := gen(), gen(), gen()
		if math.Abs(Distance(a, b)-Distance(b, a)) > 1e-9 {
			t.Fatalf("distance not symmetric: %v vs %v", Distance(a, b), Distance(b, a))
		}
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
		if Distance(a, a) != 0 {
			t.Fatalf("d(a,a) != 0")
		}
	}
}

// Property: Add then Sub restores the original vector.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		va := Vector(a).Clone()
		orig := va.Clone()
		va.Add(b).Sub(b)
		return va.ApproxEqual(orig, 1e-6*(1+orig.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Scale by s then 1/s restores the original (s != 0, finite).
func TestScaleRoundTrip(t *testing.T) {
	f := func(a []float64, s float64) bool {
		if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) < 1e-6 || math.Abs(s) > 1e6 {
			return true
		}
		v := Vector(a).Clone()
		for i := range v {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				v[i] = 0
			}
		}
		orig := v.Clone()
		v.Scale(s).Scale(1 / s)
		return v.ApproxEqual(orig, 1e-6*(1+orig.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizerFitApply(t *testing.T) {
	sample := []Vector{{0, 10}, {2, 10}, {4, 10}}
	n := NewNormalizer(2)
	if err := n.Fit(sample); err != nil {
		t.Fatal(err)
	}
	mean := n.Mean()
	if !mean.ApproxEqual(Vector{2, 10}, 1e-9) {
		t.Errorf("Mean = %v, want [2 10]", mean)
	}
	// Second feature has zero variance; std should default to 1.
	std := n.Std()
	if std[1] != 1 {
		t.Errorf("zero-variance std = %v, want 1", std[1])
	}
	x := Vector{4, 10}
	if err := n.Apply(x); err != nil {
		t.Fatal(err)
	}
	if x[1] != 0 {
		t.Errorf("constant feature normalized to %v, want 0", x[1])
	}
	if x[0] <= 0 {
		t.Errorf("above-mean feature normalized to %v, want > 0", x[0])
	}
}

func TestNormalizerStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sample := make([]Vector, 500)
	for i := range sample {
		sample[i] = Vector{rng.NormFloat64() * 3, rng.Float64() * 100}
	}
	batch := NewNormalizer(2)
	if err := batch.Fit(sample); err != nil {
		t.Fatal(err)
	}
	streaming := NewNormalizer(2)
	for _, v := range sample {
		if err := streaming.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	streaming.Freeze()
	if !batch.Mean().ApproxEqual(streaming.Mean(), 1e-9) {
		t.Errorf("means differ: %v vs %v", batch.Mean(), streaming.Mean())
	}
	if !batch.Std().ApproxEqual(streaming.Std(), 1e-9) {
		t.Errorf("stds differ: %v vs %v", batch.Std(), streaming.Std())
	}
}

func TestNormalizerErrors(t *testing.T) {
	n := NewNormalizer(2)
	if err := n.Apply(Vector{1, 2}); err == nil {
		t.Error("Apply before Freeze should error")
	}
	if err := n.Fit(nil); err == nil {
		t.Error("Fit(nil) should error")
	}
	if err := n.Observe(Vector{1}); err == nil {
		t.Error("Observe with wrong dim should error")
	}
	n2 := NewNormalizer(1)
	if err := n2.Fit([]Vector{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := n2.Observe(Vector{3}); err == nil {
		t.Error("Observe after Fit/Freeze should error")
	}
	if err := n2.Apply(Vector{1, 2}); err == nil {
		t.Error("Apply with wrong dim should error")
	}
}

// Property: after Fit+Apply on the sample itself, the sample mean is ~0 and
// std is ~1 for features with variance.
func TestNormalizerStandardizesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sample := make([]Vector, 1000)
	for i := range sample {
		sample[i] = Vector{rng.NormFloat64()*5 + 20}
	}
	n := NewNormalizer(1)
	if err := n.Fit(sample); err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, v := range sample {
		x, err := n.ApplyCopy(v)
		if err != nil {
			t.Fatal(err)
		}
		sum += x[0]
		sumSq += x[0] * x[0]
	}
	m := sum / float64(len(sample))
	sd := math.Sqrt(sumSq/float64(len(sample)) - m*m)
	if math.Abs(m) > 1e-9 {
		t.Errorf("normalized mean = %v, want ~0", m)
	}
	if math.Abs(sd-1) > 0.01 {
		t.Errorf("normalized std = %v, want ~1", sd)
	}
}

func BenchmarkSquaredDistance54(b *testing.B) {
	x, y := New(54), New(54)
	for i := range x {
		x[i], y[i] = float64(i), float64(i*2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SquaredDistance(x, y)
	}
}
