package offline

import (
	"errors"
	"fmt"

	"diststream/internal/vector"
)

// DBSCANConfig configures density-based clustering.
type DBSCANConfig struct {
	// Eps is the neighborhood radius.
	Eps float64
	// MinPoints is the minimum weighted neighborhood mass (including the
	// point itself) for a core point.
	MinPoints float64
}

// DBSCANNoise is the label assigned to noise points.
const DBSCANNoise = -1

// DBSCAN clusters points by density with optional per-point weights (nil
// means weight 1 each). It returns one label per point: 0..k-1 for
// clusters, DBSCANNoise for noise. DenStream's offline phase runs this
// over potential micro-cluster centers weighted by micro-cluster weight.
//
// The implementation is the textbook O(n^2) region-query variant, which
// is appropriate here: the offline phase clusters micro-clusters, and the
// number of micro-clusters n is small (paper §V-C: "the number of
// micro-clusters n is often much smaller than that of the incoming
// records m").
func DBSCAN(points []vector.Vector, weights []float64, cfg DBSCANConfig) ([]int, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("offline: eps %v must be positive", cfg.Eps)
	}
	if cfg.MinPoints <= 0 {
		return nil, fmt.Errorf("offline: minPoints %v must be positive", cfg.MinPoints)
	}
	if len(points) == 0 {
		return nil, errors.New("offline: no points")
	}
	if weights != nil && len(weights) != len(points) {
		return nil, fmt.Errorf("offline: %d points but %d weights", len(points), len(weights))
	}
	const unvisited = -2
	labels := make([]int, len(points))
	for i := range labels {
		labels[i] = unvisited
	}
	epsSq := cfg.Eps * cfg.Eps

	neighborhood := func(i int) ([]int, float64) {
		var idx []int
		var mass float64
		for j, p := range points {
			if vector.SquaredDistance(points[i], p) <= epsSq {
				idx = append(idx, j)
				mass += weightOf(weights, j)
			}
		}
		return idx, mass
	}

	cluster := 0
	for i := range points {
		if labels[i] != unvisited {
			continue
		}
		neighbors, mass := neighborhood(i)
		if mass < cfg.MinPoints {
			labels[i] = DBSCANNoise
			continue
		}
		labels[i] = cluster
		queue := append([]int(nil), neighbors...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == DBSCANNoise {
				labels[j] = cluster // border point reached by density
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			jNeighbors, jMass := neighborhood(j)
			if jMass >= cfg.MinPoints {
				queue = append(queue, jNeighbors...)
			}
		}
		cluster++
	}
	return labels, nil
}

// NumClusters returns the number of distinct non-noise labels.
func NumClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}
