package offline

import (
	"math"
	"math/rand"
	"testing"

	"diststream/internal/vector"
)

// blobs generates n points around each of the given centers.
func blobs(rng *rand.Rand, centers []vector.Vector, n int, std float64) ([]vector.Vector, []int) {
	var points []vector.Vector
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			p := vector.New(len(c))
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*std
			}
			points = append(points, p)
			labels = append(labels, ci)
		}
	}
	return points, labels
}

func TestKMeansSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []vector.Vector{{-10, -10}, {10, 10}, {10, -10}}
	points, truth := blobs(rng, centers, 100, 0.5)
	res, err := KMeans(points, KMeansConfig{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	// All points of one true blob must share an assignment, and different
	// blobs must have different assignments.
	blobLabel := map[int]int{}
	for i, a := range res.Assignments {
		b := truth[i]
		if prev, ok := blobLabel[b]; ok && prev != a {
			t.Fatalf("blob %d split across clusters", b)
		}
		blobLabel[b] = a
	}
	if len(blobLabel) != 3 {
		t.Fatalf("blob labels = %v", blobLabel)
	}
	seen := map[int]bool{}
	for _, a := range blobLabel {
		if seen[a] {
			t.Fatal("two blobs merged")
		}
		seen[a] = true
	}
	if res.SSQ <= 0 {
		t.Errorf("SSQ = %v", res.SSQ)
	}
	if res.Iterations < 1 {
		t.Errorf("Iterations = %d", res.Iterations)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, _ := blobs(rng, []vector.Vector{{0, 0}, {5, 5}}, 50, 1)
	a, err := KMeans(points, KMeansConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, KMeansConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if !a.Centroids[i].Equal(b.Centroids[i]) {
			t.Fatal("same seed produced different centroids")
		}
	}
}

// TestWeightedKMeansBitIdenticalReplay pins the determinism guarantee the
// serve-side macro-clustering cache depends on: the same (points,
// weights, params, seed) triple must reproduce the exact same result —
// centroids, assignments, iteration count and SSQ — on every call.
func TestWeightedKMeansBitIdenticalReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, _ := blobs(rng, []vector.Vector{{0, 0}, {6, 6}, {-6, 6}}, 40, 1.5)
	weights := make([]float64, len(points))
	for i := range weights {
		weights[i] = 1 + rng.Float64()*9
	}
	cfg := KMeansConfig{K: 3, Seed: 11, MaxIterations: 25}
	first, err := WeightedKMeans(points, weights, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := WeightedKMeans(points, weights, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again.Iterations != first.Iterations {
			t.Fatalf("run %d: iterations %d != %d", run, again.Iterations, first.Iterations)
		}
		if again.SSQ != first.SSQ {
			t.Fatalf("run %d: SSQ %v != %v", run, again.SSQ, first.SSQ)
		}
		for i := range first.Centroids {
			if !first.Centroids[i].Equal(again.Centroids[i]) {
				t.Fatalf("run %d: centroid %d differs", run, i)
			}
		}
		for i := range first.Assignments {
			if first.Assignments[i] != again.Assignments[i] {
				t.Fatalf("run %d: assignment %d differs", run, i)
			}
		}
	}
}

func TestWeightedKMeansPullsTowardHeavyPoints(t *testing.T) {
	// Two points; weight 9 vs 1 with k=1: centroid must sit at the
	// weighted mean.
	points := []vector.Vector{{0}, {10}}
	res, err := WeightedKMeans(points, []float64{9, 1}, KMeansConfig{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 {
		t.Errorf("weighted centroid = %v, want 1", res.Centroids[0][0])
	}
}

func TestKMeansKLargerThanPoints(t *testing.T) {
	points := []vector.Vector{{0}, {1}}
	res, err := KMeans(points, KMeansConfig{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Errorf("centroids = %d, want clamped to 2", len(res.Centroids))
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := []vector.Vector{{1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSQ != 0 {
		t.Errorf("SSQ = %v for identical points", res.SSQ)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, KMeansConfig{K: 1}); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := KMeans([]vector.Vector{{1}}, KMeansConfig{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := WeightedKMeans([]vector.Vector{{1}}, []float64{1, 2}, KMeansConfig{K: 1}); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := WeightedKMeans([]vector.Vector{{1}}, []float64{-1}, KMeansConfig{K: 1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedKMeans([]vector.Vector{{1}}, []float64{math.NaN()}, KMeansConfig{K: 1}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestKMeansConvergesUnderTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, _ := blobs(rng, []vector.Vector{{-5}, {5}}, 200, 0.2)
	res, err := KMeans(points, KMeansConfig{K: 2, Seed: 5, MaxIterations: 1000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 1000 {
		t.Errorf("did not converge: %d iterations", res.Iterations)
	}
}

func TestDBSCANTwoClustersAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points, truth := blobs(rng, []vector.Vector{{0, 0}, {20, 20}}, 60, 0.4)
	// Add an isolated noise point.
	points = append(points, vector.Vector{100, -100})
	truth = append(truth, -1)
	labels, err := DBSCAN(points, nil, DBSCANConfig{Eps: 2, MinPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := NumClusters(labels); got != 2 {
		t.Fatalf("clusters = %d, want 2", got)
	}
	if labels[len(labels)-1] != DBSCANNoise {
		t.Errorf("isolated point labeled %d, want noise", labels[len(labels)-1])
	}
	// Points of one blob share a label.
	blobLabel := map[int]int{}
	for i, l := range labels[:len(labels)-1] {
		b := truth[i]
		if prev, ok := blobLabel[b]; ok && prev != l {
			t.Fatalf("blob %d split", b)
		}
		blobLabel[b] = l
	}
}

func TestDBSCANWeighted(t *testing.T) {
	// Two nearby points, each alone below MinPoints mass, but the heavy
	// weight lifts them into a core cluster.
	points := []vector.Vector{{0}, {0.5}}
	labels, err := DBSCAN(points, []float64{5, 1}, DBSCANConfig{Eps: 1, MinPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("labels = %v, want both in cluster 0", labels)
	}
	// With uniform weight 1 the same points are noise.
	labels, err = DBSCAN(points, nil, DBSCANConfig{Eps: 1, MinPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != DBSCANNoise || labels[1] != DBSCANNoise {
		t.Errorf("labels = %v, want noise", labels)
	}
}

func TestDBSCANBorderPointJoinsCluster(t *testing.T) {
	// Chain: dense core at 0..0.4 (5 points), border point at 1.2 within
	// eps of the last core point but with a sparse neighborhood.
	points := []vector.Vector{{0}, {0.1}, {0.2}, {0.3}, {0.4}, {1.2}}
	labels, err := DBSCAN(points, nil, DBSCANConfig{Eps: 0.9, MinPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	if labels[5] != labels[0] {
		t.Errorf("border point label = %d, core = %d", labels[5], labels[0])
	}
}

func TestDBSCANErrors(t *testing.T) {
	pts := []vector.Vector{{1}}
	if _, err := DBSCAN(pts, nil, DBSCANConfig{Eps: 0, MinPoints: 1}); err == nil {
		t.Error("eps 0 accepted")
	}
	if _, err := DBSCAN(pts, nil, DBSCANConfig{Eps: 1, MinPoints: 0}); err == nil {
		t.Error("minPoints 0 accepted")
	}
	if _, err := DBSCAN(nil, nil, DBSCANConfig{Eps: 1, MinPoints: 1}); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := DBSCAN(pts, []float64{1, 2}, DBSCANConfig{Eps: 1, MinPoints: 1}); err == nil {
		t.Error("weight mismatch accepted")
	}
}

func TestNumClusters(t *testing.T) {
	if got := NumClusters([]int{0, 0, 1, -1, 2, 2}); got != 3 {
		t.Errorf("NumClusters = %d", got)
	}
	if got := NumClusters(nil); got != 0 {
		t.Errorf("NumClusters(nil) = %d", got)
	}
}

// Property: k-means SSQ never increases when k grows (with enough
// restarts it should be monotone; with one seeded run we allow slack but
// check the k=n case reaches ~0).
func TestKMeansSSQZeroAtKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points, _ := blobs(rng, []vector.Vector{{0, 0}}, 12, 3)
	res, err := KMeans(points, KMeansConfig{K: 12, Seed: 2, MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSQ > 1e-6 {
		t.Errorf("SSQ = %v with k = n, want ~0", res.SSQ)
	}
}
