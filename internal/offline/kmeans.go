// Package offline provides the batch-mode clustering algorithms used by
// the online-offline paradigm: k-means (with k-means++ seeding and an
// optional per-point weight, as needed to cluster micro-clusters by
// weight), and DBSCAN (used by DenStream's offline phase).
package offline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"diststream/internal/vector"
)

// KMeansConfig configures Lloyd's algorithm.
type KMeansConfig struct {
	// K is the number of clusters.
	K int
	// MaxIterations bounds Lloyd iterations; 0 means 100.
	MaxIterations int
	// Tolerance stops early when no centroid moves more than this
	// (Euclidean); 0 means 1e-6.
	Tolerance float64
	// Seed drives every random choice the algorithm makes: k-means++
	// seeding, duplicate-centroid tie-breaks and empty-cluster reseeding.
	// It is caller-supplied precisely so runs are replayable: identical
	// (points, weights, config-with-seed) inputs yield bit-identical
	// results (see the determinism guarantee on WeightedKMeans).
	Seed int64
}

// KMeansResult holds the output of a k-means run.
type KMeansResult struct {
	// Centroids are the final cluster centers, length K.
	Centroids []vector.Vector
	// Assignments maps each input point to its centroid index.
	Assignments []int
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// SSQ is the weighted sum of squared distances to assigned centroids.
	SSQ float64
}

func (c *KMeansConfig) withDefaults() KMeansConfig {
	out := *c
	if out.MaxIterations == 0 {
		out.MaxIterations = 100
	}
	if out.Tolerance == 0 {
		out.Tolerance = 1e-6
	}
	return out
}

// KMeans clusters points with uniform weights.
func KMeans(points []vector.Vector, cfg KMeansConfig) (*KMeansResult, error) {
	return WeightedKMeans(points, nil, cfg)
}

// WeightedKMeans clusters points with per-point weights (nil weights mean
// uniform). It is the paper's offline macro-clustering primitive: micro-
// cluster centroids weighted by their record counts.
//
// Determinism: the only randomness is the cfg.Seed-seeded PRNG, and the
// iteration order over points and centroids is fixed, so identical
// (points, weights, cfg) inputs — the same model snapshot, parameters and
// seed — produce bit-identical centroids, assignments and SSQ on every
// call. The serving layer's macro-clustering cache (internal/serve)
// relies on this: a result computed once for a (snapshot version,
// params, seed) key is exactly the result any later identical request
// would have computed, and replayable tests can assert exact outputs.
func WeightedKMeans(points []vector.Vector, weights []float64, cfg KMeansConfig) (*KMeansResult, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("offline: k %d must be positive", cfg.K)
	}
	if len(points) == 0 {
		return nil, errors.New("offline: no points")
	}
	if weights != nil && len(weights) != len(points) {
		return nil, fmt.Errorf("offline: %d points but %d weights", len(points), len(weights))
	}
	if weights != nil {
		for i, w := range weights {
			if w < 0 || math.IsNaN(w) {
				return nil, fmt.Errorf("offline: weight %d is %v", i, w)
			}
		}
	}
	c := cfg.withDefaults()
	k := c.K
	if k > len(points) {
		k = len(points)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	centroids := seedPlusPlus(points, weights, k, rng)
	assignments := make([]int, len(points))
	dim := len(points[0])

	var iterations int
	var ssq float64
	for iterations = 1; iterations <= c.MaxIterations; iterations++ {
		// Assignment step.
		ssq = 0
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for j, cen := range centroids {
				if d := vector.SquaredDistance(p, cen); d < bestD {
					best, bestD = j, d
				}
			}
			assignments[i] = best
			ssq += weightOf(weights, i) * bestD
		}
		// Update step.
		sums := make([]vector.Vector, k)
		totals := make([]float64, k)
		for j := range sums {
			sums[j] = vector.New(dim)
		}
		for i, p := range points {
			w := weightOf(weights, i)
			sums[assignments[i]].AXPY(w, p)
			totals[assignments[i]] += w
		}
		maxMove := 0.0
		for j := range centroids {
			if totals[j] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid to avoid dead centroids.
				centroids[j] = farthestPoint(points, centroids, rng).Clone()
				maxMove = math.Inf(1)
				continue
			}
			next := sums[j].Scale(1 / totals[j])
			if move := vector.Distance(centroids[j], next); move > maxMove {
				maxMove = move
			}
			centroids[j] = next
		}
		if maxMove <= c.Tolerance {
			break
		}
	}
	if iterations > c.MaxIterations {
		iterations = c.MaxIterations
	}
	return &KMeansResult{
		Centroids:   centroids,
		Assignments: assignments,
		Iterations:  iterations,
		SSQ:         ssq,
	}, nil
}

func weightOf(weights []float64, i int) float64 {
	if weights == nil {
		return 1
	}
	return weights[i]
}

// seedPlusPlus implements weighted k-means++ seeding.
func seedPlusPlus(points []vector.Vector, weights []float64, k int, rng *rand.Rand) []vector.Vector {
	centroids := make([]vector.Vector, 0, k)
	first := rng.Intn(len(points))
	centroids = append(centroids, points[first].Clone())
	dists := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := vector.SquaredDistance(p, c); dd < d {
					d = dd
				}
			}
			d *= weightOf(weights, i)
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, points[rng.Intn(len(points))].Clone())
			continue
		}
		x := rng.Float64() * total
		chosen := len(points) - 1
		for i, d := range dists {
			if x < d {
				chosen = i
				break
			}
			x -= d
		}
		centroids = append(centroids, points[chosen].Clone())
	}
	return centroids
}

// farthestPoint returns the point with maximum distance to its nearest
// centroid; ties and degenerate cases fall back to a random point.
func farthestPoint(points []vector.Vector, centroids []vector.Vector, rng *rand.Rand) vector.Vector {
	best := -1
	bestD := -1.0
	for i, p := range points {
		d := math.Inf(1)
		for _, c := range centroids {
			if dd := vector.SquaredDistance(p, c); dd < d {
				d = dd
			}
		}
		if d > bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		best = rng.Intn(len(points))
	}
	return points[best]
}
