package clustream

import (
	"math"
	"testing"

	"diststream/internal/algotest"
	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

func testConfig() Config {
	return Config{
		Dim:              4,
		MaxMicroClusters: 10,
		NumMacro:         2,
		Horizon:          50,
		NewRadius:        2,
		Seed:             1,
	}
}

func TestConformance(t *testing.T) {
	algotest.Run(t, algotest.Suite{
		New:            func() core.Algorithm { return New(testConfig()) },
		Register:       Register,
		RegisterWire:   RegisterWireTypes,
		Dim:            4,
		SeparatesBlobs: true,
	})
}

func rec(seq uint64, ts vclock.Time, vals ...float64) stream.Record {
	return stream.Record{Seq: seq, Timestamp: ts, Values: vals}
}

func TestMCStatistics(t *testing.T) {
	a := New(testConfig())
	mc := a.Create(rec(0, 10, 1, 1, 0, 0)).(*MC)
	a.Update(mc, rec(1, 20, 3, 3, 0, 0))
	if mc.N != 2 {
		t.Fatalf("N = %v", mc.N)
	}
	// Center = mean of (1,1) and (3,3) in first two dims.
	c := mc.Center()
	if c[0] != 2 || c[1] != 2 {
		t.Errorf("center = %v", c)
	}
	// Per-dim variance of {1,3} is 1 in each of the two varying dims:
	// full-norm deviation sqrt(1+1) = sqrt(2).
	if got := mc.RMSDeviation(); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("RMSDeviation = %v, want %v", got, math.Sqrt2)
	}
	if got := mc.MeanTime(); got != 15 {
		t.Errorf("MeanTime = %v", got)
	}
	if got := mc.StdTime(); got != 5 {
		t.Errorf("StdTime = %v", got)
	}
	if mc.Last != 20 || mc.Born != 10 {
		t.Errorf("Born=%v Last=%v", mc.Born, mc.Last)
	}
}

func TestMCMergeAdditivity(t *testing.T) {
	a := New(testConfig())
	m1 := a.Create(rec(0, 1, 1, 0, 0, 0)).(*MC)
	a.Update(m1, rec(1, 2, 2, 0, 0, 0))
	m2 := a.Create(rec(2, 3, 10, 0, 0, 0)).(*MC)

	// Merge must equal absorbing all three records into one MC.
	all := a.Create(rec(0, 1, 1, 0, 0, 0)).(*MC)
	a.Update(all, rec(1, 2, 2, 0, 0, 0))
	a.Update(all, rec(2, 3, 10, 0, 0, 0))

	m1.Merge(m2)
	if m1.N != all.N || !m1.CF1X.ApproxEqual(all.CF1X, 1e-12) ||
		!m1.CF2X.ApproxEqual(all.CF2X, 1e-12) ||
		math.Abs(m1.CF1T-all.CF1T) > 1e-12 || math.Abs(m1.CF2T-all.CF2T) > 1e-12 {
		t.Error("merge violates CF additivity")
	}
	if m1.Last != 3 || m1.Born != 1 {
		t.Errorf("merged Born=%v Last=%v", m1.Born, m1.Last)
	}
}

func TestRelevanceStampSmallCluster(t *testing.T) {
	a := New(testConfig())
	mc := a.Create(rec(0, 10, 0, 0, 0, 0)).(*MC)
	a.Update(mc, rec(1, 20, 0, 0, 0, 0))
	// N=2 < 2m for m=10: stamp falls back to the mean time.
	if got := mc.RelevanceStamp(10); got != 15 {
		t.Errorf("RelevanceStamp = %v, want mean 15", got)
	}
}

func TestRelevanceStampLargeClusterFavorsRecent(t *testing.T) {
	a := New(testConfig())
	// 100 records at t = 0..99.
	mc := a.Create(rec(0, 0, 0, 0, 0, 0)).(*MC)
	for i := 1; i < 100; i++ {
		a.Update(mc, rec(uint64(i), vclock.Time(i), 0, 0, 0, 0))
	}
	stamp := mc.RelevanceStamp(10)
	// The m/(2N) = 5th-percentile-from-the-top arrival time must be well
	// above the mean (49.5) for a uniform arrival history.
	if stamp <= 60 || stamp > 110 {
		t.Errorf("RelevanceStamp = %v, want in (60, 110]", stamp)
	}
}

func TestBudgetEnforcedByDeletion(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMicroClusters = 3
	cfg.Horizon = 5 // tight horizon: old MCs deletable
	a := New(cfg)
	model := core.NewModel()
	// Three old micro-clusters (t=0..2), then a new one at t=1000.
	for i := 0; i < 3; i++ {
		model.Add(a.Create(rec(uint64(i), vclock.Time(i), float64(20*i), 0, 0, 0)))
	}
	created := a.Create(rec(9, 1000, 100, 100, 0, 0))
	err := a.GlobalUpdate(model, []core.Update{
		{Kind: core.KindCreated, MC: created, OrderTime: 1000, OrderSeq: 9},
	}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if model.Len() != 3 {
		t.Fatalf("model size = %d, want 3", model.Len())
	}
	// The oldest MC (t=0) must be gone; the new one must be present.
	if model.Get(created.ID()) == nil {
		t.Error("created MC not admitted")
	}
	if model.Get(1) != nil {
		t.Error("oldest MC survived deletion")
	}
}

func TestBudgetEnforcedByMerge(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMicroClusters = 3
	cfg.Horizon = 1e12 // nothing is old enough to delete: must merge
	a := New(cfg)
	model := core.NewModel()
	// Two close MCs and one far, all recent.
	model.Add(a.Create(rec(0, 99, 0, 0, 0, 0)))
	model.Add(a.Create(rec(1, 99, 0.5, 0, 0, 0)))
	model.Add(a.Create(rec(2, 99, 100, 0, 0, 0)))
	created := a.Create(rec(3, 100, -100, 0, 0, 0))
	err := a.GlobalUpdate(model, []core.Update{
		{Kind: core.KindCreated, MC: created, OrderTime: 100, OrderSeq: 3},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if model.Len() != 3 {
		t.Fatalf("model size = %d, want 3", model.Len())
	}
	// The two close MCs must have merged: one of ids 1,2 gone, and the
	// merged MC holds weight 2.
	var mergedWeight float64
	for _, mc := range model.List() {
		if mc.Weight() == 2 {
			mergedWeight = 2
		}
	}
	if mergedWeight != 2 {
		t.Error("no merged micro-cluster of weight 2 found")
	}
	if model.Get(created.ID()) == nil {
		t.Error("created MC lost")
	}
}

func TestUpdatedMCReAdmittedAfterMerge(t *testing.T) {
	// A KindUpdated whose base was merged away earlier in the same global
	// update must be re-admitted, not dropped.
	cfg := testConfig()
	cfg.MaxMicroClusters = 100
	a := New(cfg)
	model := core.NewModel()
	mc := a.Create(rec(0, 1, 5, 5, 0, 0))
	model.Add(mc)
	ghost := mc.Clone()
	model.Remove(mc.ID()) // simulate deletion by an earlier operation
	err := a.GlobalUpdate(model, []core.Update{
		{Kind: core.KindUpdated, MC: ghost, OrderTime: 2, OrderSeq: 1},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if model.Len() != 1 {
		t.Fatalf("model size = %d, want 1 (re-admitted)", model.Len())
	}
}

func TestInitKMeansGrouping(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMicroClusters = 4
	a := New(cfg)
	recs := algotest.TwoBlobStream(200, 4, 100)
	mcs, err := a.Init(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(mcs) == 0 || len(mcs) > 4 {
		t.Fatalf("init produced %d MCs", len(mcs))
	}
	var total float64
	for _, mc := range mcs {
		total += mc.Weight()
	}
	if total != 200 {
		t.Errorf("init lost records: total weight %v", total)
	}
	if _, err := a.Init(nil); err == nil {
		t.Error("empty init accepted")
	}
}

func TestSingletonBoundaryIsNearestNeighborDistance(t *testing.T) {
	a := New(testConfig())
	m1 := a.Create(rec(0, 1, 0, 0, 0, 0))
	m2 := a.Create(rec(1, 1, 6, 0, 0, 0))
	m1.SetID(1)
	m2.SetID(2)
	snap := a.NewSnapshot([]core.MicroCluster{m1, m2}).(*Snapshot)
	// Singleton boundary = distance to the closest other MC = 6.
	if snap.Index.Boundaries[0] != 6 || snap.Index.Boundaries[1] != 6 {
		t.Errorf("boundaries = %v, want [6 6]", snap.Index.Boundaries)
	}
	// A record 5 away from MC1 is inside its boundary.
	if _, absorbable, _ := snap.Nearest(rec(2, 2, 2.9, 0, 0, 0)); !absorbable {
		t.Error("record within singleton boundary not absorbable")
	}
}

func TestOfflineWeightedKMeans(t *testing.T) {
	a := New(testConfig())
	model := core.NewModel()
	// Micro-clusters around two blobs.
	for i := 0; i < 4; i++ {
		base := 0.0
		if i >= 2 {
			base = 20
		}
		mc := a.Create(rec(uint64(i), 1, base+float64(i%2), base, 0, 0))
		model.Add(mc)
	}
	clustering, err := a.Offline(model)
	if err != nil {
		t.Fatal(err)
	}
	if clustering.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d", clustering.NumClusters())
	}
	p0 := vector.Vector{0, 0, 0, 0}
	p1 := vector.Vector{20, 20, 0, 0}
	if clustering.Assign(p0) == clustering.Assign(p1) {
		t.Error("offline failed to separate blobs")
	}
	// Macro weights must sum to total MC weight.
	var w float64
	for _, m := range clustering.Macros {
		w += m.Weight
	}
	if w != model.TotalWeight() {
		t.Errorf("macro weight %v != model weight %v", w, model.TotalWeight())
	}
	// Empty model: empty clustering.
	emptyC, err := a.Offline(core.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	if emptyC.NumClusters() != 0 {
		t.Error("empty model produced clusters")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.84134, 0.99998}, // ~1 sigma
		{0.001, -3.090232},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("extremes not infinite")
	}
}

func TestDefaults(t *testing.T) {
	a := New(Config{})
	if a.cfg.MaxMicroClusters != 100 || a.cfg.NumMacro != 5 ||
		a.cfg.RadiusFactor != 2 || a.cfg.Horizon != 100 ||
		a.cfg.MLast != 10 || a.cfg.NewRadius != 1 {
		t.Errorf("defaults = %+v", a.cfg)
	}
}
