// Package clustream implements the CluStream algorithm (Aggarwal et al.,
// VLDB 2003) on the DistStream Algorithm API.
//
// Micro-clusters are cluster feature vectors extended with temporal
// statistics: (CF2x, CF1x, CF2t, CF1t, N) — the squared and linear sums
// of the records and of their timestamps (paper §VI: "we define
// micro-cluster representations as Σx², Σx, Σt², Σt for CluStream").
// CluStream keeps a fixed budget of q micro-clusters; when a new one is
// created, the algorithm either deletes the least-recent micro-cluster
// (relevance stamp below the horizon) or merges the two closest. The
// offline phase runs weighted k-means over micro-cluster centroids.
//
// CluStream's local update has no decay (λ = 1): increments are purely
// additive. Order sensitivity therefore enters through the irreversible
// global operations — deletion and merging — which is why the order-aware
// global update (§IV-C2) still matters for this algorithm.
package clustream

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"diststream/internal/core"
	"diststream/internal/offline"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Name is the registry name of this algorithm.
const Name = "clustream"

// MC is a CluStream micro-cluster.
type MC struct {
	Id   uint64
	CF1X vector.Vector // linear sum of records
	CF2X vector.Vector // squared sum of records
	CF1T float64       // linear sum of timestamps
	CF2T float64       // squared sum of timestamps
	N    float64       // record count
	Born vclock.Time
	Last vclock.Time
}

var _ core.MicroCluster = (*MC)(nil)

// ID implements core.MicroCluster.
func (m *MC) ID() uint64 { return m.Id }

// SetID implements core.MicroCluster.
func (m *MC) SetID(id uint64) { m.Id = id }

// Weight implements core.MicroCluster.
func (m *MC) Weight() float64 { return m.N }

// CreatedAt implements core.MicroCluster.
func (m *MC) CreatedAt() vclock.Time { return m.Born }

// LastUpdated implements core.MicroCluster.
func (m *MC) LastUpdated() vclock.Time { return m.Last }

// Center implements core.MicroCluster.
func (m *MC) Center() vector.Vector {
	if m.N == 0 {
		return m.CF1X.Clone()
	}
	return m.CF1X.Clone().Scale(1 / m.N)
}

// Clone implements core.MicroCluster.
func (m *MC) Clone() core.MicroCluster {
	out := *m
	out.CF1X = m.CF1X.Clone()
	out.CF2X = m.CF2X.Clone()
	return &out
}

// RMSDeviation returns the root-mean-square deviation of the records
// from the centroid in Euclidean distance units (the full-norm deviation
// sqrt(Σ_d var_d), NOT a per-dimension average): boundaries derived from
// it are compared against Euclidean distances, which grow with the
// square root of the dimensionality.
func (m *MC) RMSDeviation() float64 {
	if m.N == 0 {
		return 0
	}
	var sum float64
	for d := range m.CF1X {
		mean := m.CF1X[d] / m.N
		v := m.CF2X[d]/m.N - mean*mean
		if v > 0 {
			sum += v
		}
	}
	return math.Sqrt(sum)
}

// MeanTime returns the mean record timestamp μt.
func (m *MC) MeanTime() float64 {
	if m.N == 0 {
		return float64(m.Born)
	}
	return m.CF1T / m.N
}

// StdTime returns the timestamp standard deviation σt.
func (m *MC) StdTime() float64 {
	if m.N == 0 {
		return 0
	}
	mu := m.CF1T / m.N
	v := m.CF2T/m.N - mu*mu
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// RelevanceStamp approximates the arrival time of the m/(2N)-percentile
// record (the recency measure CluStream uses to pick deletion victims):
// μt + σt · Φ⁻¹(m/(2N)), clamped to μt when the micro-cluster holds fewer
// than 2m records.
func (m *MC) RelevanceStamp(mLast float64) float64 {
	if m.N < 2*mLast {
		return m.MeanTime()
	}
	p := 1 - mLast/(2*m.N) // percentile of the m-th most recent record
	return m.MeanTime() + m.StdTime()*normalQuantile(p)
}

// Absorb folds a record into the micro-cluster (pure addition, λ = 1).
func (m *MC) Absorb(rec stream.Record) {
	m.CF1X.Add(rec.Values)
	m.CF2X.AddSquared(rec.Values)
	ts := float64(rec.Timestamp)
	m.CF1T += ts
	m.CF2T += ts * ts
	m.N++
	if rec.Timestamp > m.Last {
		m.Last = rec.Timestamp
	}
}

// Merge adds other's statistics into m (the CF additivity property).
func (m *MC) Merge(other *MC) {
	m.CF1X.Add(other.CF1X)
	m.CF2X.Add(other.CF2X)
	m.CF1T += other.CF1T
	m.CF2T += other.CF2T
	m.N += other.N
	if other.Last > m.Last {
		m.Last = other.Last
	}
	if other.Born < m.Born {
		m.Born = other.Born
	}
}

// Config parameterizes CluStream.
type Config struct {
	// Dim is the record dimensionality.
	Dim int
	// MaxMicroClusters is the budget q (paper: 10x the real cluster
	// count). Default 100.
	MaxMicroClusters int
	// NumMacro is k for the offline weighted k-means. Default 5.
	NumMacro int
	// RadiusFactor scales the RMS deviation into the maximum boundary
	// (CluStream's t). Default 2.
	RadiusFactor float64
	// Horizon is the recency window δ in virtual seconds: a micro-cluster
	// whose relevance stamp falls before now-Horizon may be deleted.
	// Default 100.
	Horizon float64
	// MLast is the m parameter of the relevance stamp (number of most
	// recent records whose arrival time is approximated). Default 10.
	MLast float64
	// NewRadius is the absorb boundary used for singleton micro-clusters
	// (which have no deviation yet) and by outlier pre-merge. Default 1.
	NewRadius float64
	// Seed drives the k-means initialization.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxMicroClusters <= 0 {
		out.MaxMicroClusters = 100
	}
	if out.NumMacro <= 0 {
		out.NumMacro = 5
	}
	if out.RadiusFactor <= 0 {
		out.RadiusFactor = 2
	}
	if out.Horizon <= 0 {
		out.Horizon = 100
	}
	if out.MLast <= 0 {
		out.MLast = 10
	}
	if out.NewRadius <= 0 {
		out.NewRadius = 1
	}
	return out
}

// Algorithm implements core.Algorithm for CluStream.
type Algorithm struct {
	cfg Config
}

var _ core.Algorithm = (*Algorithm)(nil)

// New returns a CluStream instance with defaults applied.
func New(cfg Config) *Algorithm {
	return &Algorithm{cfg: cfg.withDefaults()}
}

// Register adds the CluStream factory to an algorithm registry.
func Register(reg *core.AlgorithmRegistry) error {
	return reg.Register(Name, func(p core.Params) (core.Algorithm, error) {
		return New(Config{
			Dim:              p.Dim,
			MaxMicroClusters: p.Int("maxMC", 0),
			NumMacro:         p.Int("numMacro", 0),
			RadiusFactor:     p.Float("radiusFactor", 0),
			Horizon:          p.Float("horizon", 0),
			MLast:            p.Float("mLast", 0),
			NewRadius:        p.Float("newRadius", 0),
			Seed:             int64(p.Int("seed", 0)),
		}), nil
	})
}

// RegisterWireTypes registers gob payload types.
func RegisterWireTypes() {
	gob.Register(&MC{})
	gob.Register(&Snapshot{})
	wire.RegisterMCCodec(Name, &MC{}, encMC, decMC)
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// Params implements core.Algorithm.
func (a *Algorithm) Params() core.Params {
	return core.Params{
		Name: Name,
		Dim:  a.cfg.Dim,
		Ints: map[string]int{
			"maxMC":    a.cfg.MaxMicroClusters,
			"numMacro": a.cfg.NumMacro,
			"seed":     int(a.cfg.Seed),
		},
		Floats: map[string]float64{
			"radiusFactor": a.cfg.RadiusFactor,
			"horizon":      a.cfg.Horizon,
			"mLast":        a.cfg.MLast,
			"newRadius":    a.cfg.NewRadius,
		},
	}
}

// Init implements core.Algorithm: k-means over the warm-up sample into q
// groups, each becoming one micro-cluster (paper §II-B).
func (a *Algorithm) Init(records []stream.Record) ([]core.MicroCluster, error) {
	if len(records) == 0 {
		return nil, errors.New("clustream: empty init sample")
	}
	points := make([]vector.Vector, len(records))
	for i, rec := range records {
		points[i] = rec.Values
	}
	k := a.cfg.MaxMicroClusters
	if k > len(points) {
		k = len(points)
	}
	res, err := offline.KMeans(points, offline.KMeansConfig{K: k, Seed: a.cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("clustream: init k-means: %w", err)
	}
	mcs := make([]*MC, len(res.Centroids))
	for i, rec := range records {
		g := res.Assignments[i]
		if mcs[g] == nil {
			mcs[g] = a.newMC(rec)
			continue
		}
		mcs[g].Absorb(rec)
	}
	out := make([]core.MicroCluster, 0, len(mcs))
	for _, mc := range mcs {
		if mc != nil {
			out = append(out, mc)
		}
	}
	return out, nil
}

func (a *Algorithm) newMC(rec stream.Record) *MC {
	mc := &MC{
		CF1X: rec.Values.Clone(),
		CF2X: vector.New(len(rec.Values)).AddSquared(rec.Values),
		CF1T: float64(rec.Timestamp),
		CF2T: float64(rec.Timestamp) * float64(rec.Timestamp),
		N:    1,
		Born: rec.Timestamp,
		Last: rec.Timestamp,
	}
	return mc
}

// NewSnapshot implements core.Algorithm: build the flat center index
// once, then derive per-row boundaries.
func (a *Algorithm) NewSnapshot(mcs []core.MicroCluster) core.Snapshot {
	snap := &Snapshot{MCs: mcs, Index: core.BuildFlatIndex(mcs)}
	snap.Index.Boundaries = make([]float64, len(mcs))
	for i, mc := range mcs {
		m := mc.(*MC)
		if m.N >= 2 {
			snap.Index.Boundaries[i] = a.cfg.RadiusFactor * m.RMSDeviation()
			if snap.Index.Boundaries[i] == 0 {
				snap.Index.Boundaries[i] = a.cfg.NewRadius
			}
			continue
		}
		// Singleton: boundary is the distance to the closest other
		// micro-cluster (CluStream's rule).
		snap.Index.Boundaries[i] = a.singletonBoundary(&snap.Index, i)
	}
	return snap
}

func (a *Algorithm) singletonBoundary(idx *core.FlatIndex, i int) float64 {
	best := math.Inf(1)
	ci := idx.Row(i)
	for j := 0; j < idx.Len(); j++ {
		if j == i {
			continue
		}
		if d := vector.Distance(ci, idx.Row(j)); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return a.cfg.NewRadius
	}
	return best
}

// Update implements core.Algorithm (λ = 1, pure addition).
func (a *Algorithm) Update(mc core.MicroCluster, rec stream.Record) {
	mc.(*MC).Absorb(rec)
}

// Create implements core.Algorithm.
func (a *Algorithm) Create(rec stream.Record) core.MicroCluster {
	return a.newMC(rec)
}

// AbsorbIntoNew implements core.Algorithm: fresh outlier micro-clusters
// absorb within the NewRadius boundary during pre-merge.
func (a *Algorithm) AbsorbIntoNew(mc core.MicroCluster, rec stream.Record) bool {
	m := mc.(*MC)
	boundary := a.cfg.NewRadius
	if m.N >= 2 {
		if b := a.cfg.RadiusFactor * m.RMSDeviation(); b > boundary {
			boundary = b
		}
	}
	return vector.Distance(rec.Values, m.Center()) <= boundary
}

// GlobalUpdate implements core.Algorithm: apply updates in the provided
// order, then restore the micro-cluster budget — deleting least-recent
// micro-clusters whose relevance stamp falls outside the horizon,
// otherwise merging the two closest. Deletion/merging runs after all
// updates are applied: operating on a micro-cluster that still has a
// pending update in the same batch would double-count its mass (the
// update clone carries the stale base) or wipe a merge partner's records.
// The irreversible operations still execute in a deterministic sequence
// among themselves, which is what §IV-C2 requires of them.
func (a *Algorithm) GlobalUpdate(model *core.Model, updates []core.Update, now vclock.Time) error {
	for _, u := range updates {
		switch u.Kind {
		case core.KindUpdated:
			if model.Get(u.MC.ID()) == nil {
				// Safety net: the base vanished (external model
				// manipulation); re-admit the update.
				model.Add(u.MC)
			} else if err := model.Replace(u.MC); err != nil {
				return err
			}
		case core.KindCreated:
			model.Add(u.MC)
		default:
			return fmt.Errorf("clustream: unknown update kind %d", u.Kind)
		}
	}
	return a.enforceBudget(model, now)
}

// budgetCache is the contract the budget-enforcement loop drives: the
// serial centerCache and the sharded-path shardCenterCache (sharded.go)
// both implement it with identical decision semantics, so the loop's
// deletion/merge sequence is the same object-for-object whichever cache
// backs it.
type budgetCache interface {
	leastRecent() (uint64, float64, bool)
	closestPair() (uint64, uint64, bool)
	put(m *MC)
	remove(id uint64)
}

// enforceBudget shrinks the model back to MaxMicroClusters. The
// closest-pair cache is built only when the budget is actually exceeded,
// keeping the common one-record-at-a-time call cheap.
func (a *Algorithm) enforceBudget(model *core.Model, now vclock.Time) error {
	if model.Len() <= a.cfg.MaxMicroClusters {
		return nil
	}
	return a.enforceBudgetWith(model, now, newCenterCache(model, a.cfg.MLast))
}

// enforceBudgetWith runs the deletion/merge loop against a prebuilt
// cache until the model fits the budget again.
func (a *Algorithm) enforceBudgetWith(model *core.Model, now vclock.Time, cache budgetCache) error {
	for model.Len() > a.cfg.MaxMicroClusters {
		if id, stamp, ok := cache.leastRecent(); ok && stamp < float64(now)-a.cfg.Horizon {
			model.Remove(id)
			cache.remove(id)
			continue
		}
		i, j, ok := cache.closestPair()
		if !ok {
			return errors.New("clustream: budget exceeded but no pair to merge")
		}
		dst := model.Get(i).(*MC)
		src := model.Get(j).(*MC)
		dst.Merge(src)
		model.Remove(j)
		cache.remove(j)
		cache.put(dst)
	}
	return nil
}

// centerCache maintains micro-cluster centroids and per-entry nearest
// neighbors across one global update, so repeated closest-pair queries
// cost O(n·d) amortized instead of O(n²·d) each.
type centerCache struct {
	ids     []uint64
	index   map[uint64]int
	centers []vector.Vector
	stamps  []float64 // cached relevance stamps for deletion victims
	nnDist  []float64 // squared distance to the nearest other entry
	nnID    []uint64
	dirty   []bool // entry's nearest neighbor needs recomputation
	mLast   float64
}

func newCenterCache(model *core.Model, mLast float64) *centerCache {
	mcs := model.List()
	c := &centerCache{index: make(map[uint64]int, len(mcs)), mLast: mLast}
	for _, mc := range mcs {
		c.appendEntry(mc.(*MC))
	}
	return c
}

func (c *centerCache) appendEntry(m *MC) {
	c.index[m.Id] = len(c.ids)
	c.ids = append(c.ids, m.Id)
	c.centers = append(c.centers, m.Center())
	c.stamps = append(c.stamps, m.RelevanceStamp(c.mLast))
	c.nnDist = append(c.nnDist, math.Inf(1))
	c.nnID = append(c.nnID, 0)
	c.dirty = append(c.dirty, true)
}

// leastRecent returns the entry with the smallest relevance stamp.
func (c *centerCache) leastRecent() (uint64, float64, bool) {
	best := -1
	for i := range c.ids {
		if best < 0 || c.stamps[i] < c.stamps[best] {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return c.ids[best], c.stamps[best], true
}

// put inserts or refreshes an entry and invalidates neighbors that
// pointed at it.
func (c *centerCache) put(m *MC) {
	if i, ok := c.index[m.Id]; ok {
		c.centers[i] = m.Center()
		c.stamps[i] = m.RelevanceStamp(c.mLast)
		c.dirty[i] = true
		c.invalidateReferencesTo(m.Id)
		return
	}
	c.appendEntry(m)
}

func (c *centerCache) remove(id uint64) {
	i, ok := c.index[id]
	if !ok {
		return
	}
	last := len(c.ids) - 1
	c.ids[i] = c.ids[last]
	c.centers[i] = c.centers[last]
	c.stamps[i] = c.stamps[last]
	c.nnDist[i] = c.nnDist[last]
	c.nnID[i] = c.nnID[last]
	c.dirty[i] = c.dirty[last]
	c.index[c.ids[i]] = i
	c.ids = c.ids[:last]
	c.centers = c.centers[:last]
	c.stamps = c.stamps[:last]
	c.nnDist = c.nnDist[:last]
	c.nnID = c.nnID[:last]
	c.dirty = c.dirty[:last]
	delete(c.index, id)
	c.invalidateReferencesTo(id)
}

func (c *centerCache) invalidateReferencesTo(id uint64) {
	for i := range c.ids {
		if c.nnID[i] == id {
			c.dirty[i] = true
		}
	}
}

func (c *centerCache) recompute(i int) {
	best := math.Inf(1)
	var bestID uint64
	for j := range c.ids {
		if j == i {
			continue
		}
		if d := vector.SquaredDistance(c.centers[i], c.centers[j]); d < best {
			best, bestID = d, c.ids[j]
		}
	}
	c.nnDist[i] = best
	c.nnID[i] = bestID
	c.dirty[i] = false
}

// closestPair returns the ids of the two closest micro-clusters, lazily
// recomputing stale nearest-neighbor entries.
func (c *centerCache) closestPair() (uint64, uint64, bool) {
	if len(c.ids) < 2 {
		return 0, 0, false
	}
	best := math.Inf(1)
	bi := -1
	for i := range c.ids {
		if c.dirty[i] {
			c.recompute(i)
		}
		if c.nnDist[i] < best {
			best = c.nnDist[i]
			bi = i
		}
	}
	if bi < 0 {
		return 0, 0, false
	}
	return c.ids[bi], c.nnID[bi], true
}

// Offline implements core.Algorithm: weighted k-means over micro-cluster
// centroids, weights = record counts.
func (a *Algorithm) Offline(model *core.Model) (*core.Clustering, error) {
	mcs := model.List()
	if len(mcs) == 0 {
		return core.NewClustering(nil, nil, nil), nil
	}
	centers := make([]vector.Vector, len(mcs))
	weights := make([]float64, len(mcs))
	for i, mc := range mcs {
		centers[i] = mc.Center()
		weights[i] = mc.Weight()
	}
	res, err := offline.WeightedKMeans(centers, weights, offline.KMeansConfig{
		K:    a.cfg.NumMacro,
		Seed: a.cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("clustream: offline k-means: %w", err)
	}
	clustering := buildClustering(mcs, centers, res.Assignments, len(res.Centroids))
	clustering.SetNoiseCutoff(a.assignCutoff(mcs))
	return clustering, nil
}

// assignCutoff bounds offline assignment at twice the typical online
// absorb boundary: records farther than this from every micro-cluster are
// reported as noise (missed), mirroring the online outlier decision.
func (a *Algorithm) assignCutoff(mcs []core.MicroCluster) float64 {
	var rsum, wsum float64
	for _, mc := range mcs {
		m := mc.(*MC)
		rsum += m.N * m.RMSDeviation()
		wsum += m.N
	}
	cutoff := 2 * a.cfg.NewRadius
	if wsum > 0 {
		if b := 2 * a.cfg.RadiusFactor * rsum / wsum; b > cutoff {
			cutoff = b
		}
	}
	return cutoff
}

// buildClustering assembles the core.Clustering from member assignments.
func buildClustering(mcs []core.MicroCluster, centers []vector.Vector, assignments []int, k int) *core.Clustering {
	macros := make([]core.MacroCluster, k)
	for i := range macros {
		macros[i].Label = i
	}
	labels := make([]int, len(mcs))
	for i, mc := range mcs {
		g := assignments[i]
		labels[i] = g
		macros[g].Members = append(macros[g].Members, mc.ID())
		macros[g].Weight += mc.Weight()
		if macros[g].Center == nil {
			macros[g].Center = vector.New(len(centers[i]))
		}
		macros[g].Center.AXPY(mc.Weight(), centers[i])
	}
	for g := range macros {
		if macros[g].Weight > 0 {
			macros[g].Center.Scale(1 / macros[g].Weight)
		}
	}
	return core.NewClustering(macros, centers, labels)
}

// Snapshot is CluStream's search structure: a flat center index with
// per-row absorb boundaries.
type Snapshot struct {
	MCs   []core.MicroCluster
	Index core.FlatIndex
}

var _ core.Snapshot = (*Snapshot)(nil)

// Nearest implements core.Snapshot via the flat one-vs-many kernel. The
// winning squared distance is exact (not the norm expansion), so the √d
// boundary comparison matches the scalar scan bit-for-bit.
func (s *Snapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	best, bestD := s.Index.Nearest(rec.Values)
	if best < 0 {
		return 0, false, false
	}
	return s.Index.IDs[best], math.Sqrt(bestD) <= s.Index.Boundaries[best], true
}

// NearestAll implements core.BatchNearester: one blocked many-vs-many
// kernel call per record block, then the same per-row boundary test as
// Nearest. Bit-identical to the per-record path.
func (s *Snapshot) NearestAll(recs []stream.Record, ids []uint64, absorb, found []bool) ([]uint64, []bool, []bool) {
	ids, absorb, found = core.GrowNearestOut(len(recs), ids, absorb, found)
	nr := core.GetNearestRows()
	nr.Rows, nr.Dists = s.Index.NearestAll(recs, nr.Rows, nr.Dists)
	for i, row := range nr.Rows {
		if row < 0 {
			ids[i], absorb[i], found[i] = 0, false, false
			continue
		}
		ids[i] = s.Index.IDs[row]
		absorb[i] = math.Sqrt(nr.Dists[i]) <= s.Index.Boundaries[row]
		found[i] = true
	}
	nr.Release()
	return ids, absorb, found
}

// Get implements core.Snapshot in O(1) via the id → row map.
func (s *Snapshot) Get(id uint64) core.MicroCluster {
	if i, ok := s.Index.IndexOf(id); ok {
		return s.MCs[i]
	}
	return nil
}

// Len implements core.Snapshot.
func (s *Snapshot) Len() int { return len(s.MCs) }

// normalQuantile is the inverse standard normal CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9), used by the relevance
// stamp's percentile estimate.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
