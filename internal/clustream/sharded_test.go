package clustream

import (
	"bytes"
	"math/rand"
	"testing"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// randMC builds a random micro-cluster whose temporal features put its
// relevance stamp near t, so Horizon-based deletions are controllable.
func randMC(r *rand.Rand, dim int, t float64) *MC {
	n := 1 + float64(r.Intn(5))
	cf1 := vector.New(dim)
	cf2 := vector.New(dim)
	for d := range cf1 {
		v := r.NormFloat64() * 3
		cf1[d] = v * n
		cf2[d] = v * v * n
	}
	return &MC{
		CF1X: cf1,
		CF2X: cf2,
		CF1T: t * n,
		CF2T: t * t * n,
		N:    n,
		Born: vclock.Time(t),
		Last: vclock.Time(t),
	}
}

// cloneModel deep-copies via the state codec (the same round trip
// checkpoints use), preserving the id allocator and meta.
func cloneModel(t *testing.T, a *Algorithm, m *core.Model) *core.Model {
	t.Helper()
	data, err := a.EncodeState(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := a.DecodeState(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func encodeModel(t *testing.T, a *Algorithm, m *core.Model) []byte {
	t.Helper()
	data, err := a.EncodeState(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// cloneUpdates deep-copies a batch so one run's in-place mutations
// (Merge during budget enforcement, Add assigning re-admission ids)
// cannot leak into the other run's input.
func cloneUpdates(updates []core.Update) []core.Update {
	out := make([]core.Update, len(updates))
	for i, u := range updates {
		u.MC = u.MC.Clone()
		out[i] = u
	}
	return out
}

// randUpdates builds a randomized batch against model: replacements of
// live ids (with duplicates), updates whose base was deleted
// (re-admission), and creations — in (OrderTime, OrderSeq) order, as the
// pipeline presents them after the order-aware sort.
func randUpdates(r *rand.Rand, model *core.Model, removed []uint64, dim int, n int, now float64) []core.Update {
	live := model.IDs()
	updates := make([]core.Update, 0, n)
	for i := 0; i < n; i++ {
		ts := now - 1 + float64(i)/float64(n)
		mc := randMC(r, dim, ts)
		u := core.Update{MC: mc, OrderTime: vclock.Time(ts), OrderSeq: uint64(i)}
		switch roll := r.Intn(10); {
		case roll < 5 && len(live) > 0: // replacement, duplicates likely
			mc.Id = live[r.Intn(len(live))]
			u.Kind = core.KindUpdated
		case roll < 7 && len(removed) > 0: // base deleted before the global update
			mc.Id = removed[r.Intn(len(removed))]
			u.Kind = core.KindUpdated
		default:
			u.Kind = core.KindCreated
		}
		updates = append(updates, u)
	}
	return updates
}

// TestShardedGlobalUpdateMatchesSerial is the fuzz-style differential
// battery: random models (with deleted ids), random batches, random
// shard counts and pool sizes — serial GlobalUpdate and
// GlobalUpdateSharded must produce byte-identical state, including the
// budget loop's deletions and merges.
func TestShardedGlobalUpdateMatchesSerial(t *testing.T) {
	const dim = 6
	for trial := 0; trial < 60; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		algo := New(Config{
			Dim: dim,
			// Small budget so most trials run deletions and merges.
			MaxMicroClusters: 8 + r.Intn(8),
			Horizon:          20 + 40*r.Float64(),
			MLast:            5,
		})
		base := core.NewModel()
		now := 100.0
		nBase := 5 + r.Intn(15)
		for i := 0; i < nBase; i++ {
			// A mix of stale stamps (Horizon deletions) and fresh ones
			// (forced merges).
			t0 := now - 2*r.Float64()
			if r.Intn(3) == 0 {
				t0 = now - algo.cfg.Horizon - 50*r.Float64()
			}
			base.Add(randMC(r, dim, t0))
		}
		var removed []uint64
		for _, id := range base.IDs() {
			if r.Intn(6) == 0 {
				base.Remove(id)
				removed = append(removed, id)
			}
		}
		base.SetNow(vclock.Time(now - 1))
		updates := randUpdates(r, base, removed, dim, 2+r.Intn(24), now)
		shards := 1 + r.Intn(9)
		pool := core.NewReducerPool(1 + r.Intn(4))

		serial := cloneModel(t, algo, base)
		if err := algo.GlobalUpdate(serial, cloneUpdates(updates), vclock.Time(now)); err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		sharded := cloneModel(t, algo, base)
		run := core.NewShardedRun(shards, pool, nil)
		if err := algo.GlobalUpdateSharded(sharded, cloneUpdates(updates), vclock.Time(now), run); err != nil {
			t.Fatalf("trial %d: sharded: %v", trial, err)
		}
		if !bytes.Equal(encodeModel(t, algo, serial), encodeModel(t, algo, sharded)) {
			t.Fatalf("trial %d: sharded state diverged (shards=%d pool=%d updates=%d)",
				trial, shards, pool.Workers(), len(updates))
		}
	}
}

// TestShardedGlobalUpdateEmptyBatch covers the degenerate batch: no
// updates, budget not exceeded — both paths must leave the model
// untouched.
func TestShardedGlobalUpdateEmptyBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	algo := New(Config{Dim: 4, MaxMicroClusters: 10})
	base := core.NewModel()
	for i := 0; i < 5; i++ {
		base.Add(randMC(r, 4, 50))
	}
	before := encodeModel(t, algo, base)
	run := core.NewShardedRun(4, core.NewReducerPool(2), nil)
	if err := algo.GlobalUpdateSharded(base, nil, 60, run); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, encodeModel(t, algo, base)) {
		t.Fatal("empty sharded batch mutated the model")
	}
}

// TestShardedBudgetMergeChain forces a long merge chain (no deletions:
// all stamps fresh) through both paths. Merge chains are the adversarial
// case for the nearest-neighbor cache: every merge dirties entries and
// the next closest pair depends on the previous merge's exact result.
func TestShardedBudgetMergeChain(t *testing.T) {
	const dim = 4
	r := rand.New(rand.NewSource(99))
	algo := New(Config{Dim: dim, MaxMicroClusters: 6, Horizon: 1e9, MLast: 5})
	base := core.NewModel()
	now := 200.0
	for i := 0; i < 30; i++ {
		base.Add(randMC(r, dim, now-r.Float64()))
	}
	var updates []core.Update
	for i := 0; i < 10; i++ {
		updates = append(updates, core.Update{
			Kind: core.KindCreated, MC: randMC(r, dim, now - 0.5),
			OrderTime: vclock.Time(now), OrderSeq: uint64(i),
		})
	}
	serial := cloneModel(t, algo, base)
	if err := algo.GlobalUpdate(serial, cloneUpdates(updates), vclock.Time(now)); err != nil {
		t.Fatal(err)
	}
	if serial.Len() != algo.cfg.MaxMicroClusters {
		t.Fatalf("budget not enforced: len=%d", serial.Len())
	}
	sharded := cloneModel(t, algo, base)
	run := core.NewShardedRun(5, core.NewReducerPool(3), nil)
	if err := algo.GlobalUpdateSharded(sharded, cloneUpdates(updates), vclock.Time(now), run); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeModel(t, algo, serial), encodeModel(t, algo, sharded)) {
		t.Fatal("merge-chain state diverged")
	}
}
