package clustream

import (
	"fmt"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Delta broadcast support: CluStream keeps untouched micro-clusters
// bit-identical across batches (no global decay), so steady-state deltas
// carry only the handful of clusters the batch actually absorbed into.

// ListMCs implements core.MCLister for the worker-side delta apply.
func (s *Snapshot) ListMCs() []core.MicroCluster { return s.MCs }

// DiffState implements core.SnapshotDiffer.
func (a *Algorithm) DiffState(old, new []core.MicroCluster) (*core.SnapshotDelta, bool) {
	d, ok := core.DiffMCLists(old, new, mcEqual)
	if !ok {
		return nil, false
	}
	d.Params = a.Params()
	return d, true
}

// ApplyDelta implements core.SnapshotDiffer.
func (a *Algorithm) ApplyDelta(old []core.MicroCluster, d *core.SnapshotDelta) ([]core.MicroCluster, error) {
	for i, mc := range d.Upserts {
		if _, ok := mc.(*MC); !ok {
			return nil, fmt.Errorf("clustream: delta upsert %d is %T, want *MC", i, mc)
		}
	}
	return core.ApplyMCDelta(old, d)
}

// mcEqual is bit-exact equality over every MC field.
func mcEqual(a, b core.MicroCluster) bool {
	x, ok := a.(*MC)
	if !ok {
		return false
	}
	y, ok := b.(*MC)
	if !ok {
		return false
	}
	return x.Id == y.Id &&
		core.BitsEqual(x.CF1T, y.CF1T) &&
		core.BitsEqual(x.CF2T, y.CF2T) &&
		core.BitsEqual(x.N, y.N) &&
		core.BitsEqual(float64(x.Born), float64(y.Born)) &&
		core.BitsEqual(float64(x.Last), float64(y.Last)) &&
		core.VecBitsEqual(x.CF1X, y.CF1X) &&
		core.VecBitsEqual(x.CF2X, y.CF2X)
}

// encMC / decMC are the columnar wire codec for *MC.
func encMC(e *wire.Enc, mc core.MicroCluster) bool {
	m, ok := mc.(*MC)
	if !ok {
		return false
	}
	e.Uint(m.Id)
	e.F64(m.CF1T)
	e.F64(m.CF2T)
	e.F64(m.N)
	e.F64(float64(m.Born))
	e.F64(float64(m.Last))
	e.F64s(m.CF1X)
	e.F64s(m.CF2X)
	return true
}

func decMC(d *wire.Dec) core.MicroCluster {
	m := &MC{}
	m.Id = d.Uint()
	m.CF1T = d.F64()
	m.CF2T = d.F64()
	m.N = d.F64()
	m.Born = vclock.Time(d.F64())
	m.Last = vclock.Time(d.F64())
	m.CF1X = vector.Vector(d.F64s())
	m.CF2X = vector.Vector(d.F64s())
	return m
}
