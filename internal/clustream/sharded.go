package clustream

import (
	"fmt"
	"math"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// This file implements the core.ShardedGlobalUpdater capability for
// CluStream. The decomposition:
//
//	parallel (per shard)   reduce the shard's fragment (touched
//	                       positions + final micro-clusters) and, when
//	                       the budget will be exceeded, fill the shard's
//	                       rows of the contiguous budget cache (centroid
//	                       matrix + relevance stamps);
//	barrier
//	residue (serialized)   fold the fragments into the model, then run
//	                       the ordinary deletion/merge budget loop
//	                       against the prebuilt cache.
//
// Byte-identity with the serial path: the apply phase only replaces
// disjoint positions and pre-assigns creation ids in global order (see
// core.ShardPlan), and the budget loop is the same enforceBudgetWith
// loop the serial path runs — backed by a cache whose centroids are
// computed with the exact Center() arithmetic (CF1X[d] * (1/N)) and
// whose nearest-neighbor queries go through vector.ArgminBelowBound,
// which is documented (and differentially fuzzed) to reproduce the
// scalar squared-distance scan bit-for-bit. Lazy recomputation happens
// at the same sequence points as the serial cache, over the same entry
// order, so every deletion and merge picks the same pair.
var _ core.ShardedGlobalUpdater = (*Algorithm)(nil)

// GlobalUpdateSharded implements core.ShardedGlobalUpdater.
func (a *Algorithm) GlobalUpdateSharded(model *core.Model, updates []core.Update, now vclock.Time, run *core.ShardedRun) error {
	plan, err := run.Plan(model, updates)
	if err != nil {
		return fmt.Errorf("clustream: %w", err)
	}
	frags := make([]*core.ShardFragment, plan.Shards())
	// The budget decision is deterministic at plan time: the update phase
	// always grows the model to exactly FinalLen.
	var cache *shardCenterCache
	if plan.FinalLen() > a.cfg.MaxMicroClusters {
		dim := len(plan.FinalMC(0).(*MC).CF1X)
		cache = newShardCenterCache(plan.FinalLen(), dim, a.cfg.MLast, run.Pool())
	}
	if err := run.Parallel(func(s int) error {
		frags[s] = plan.Reduce(s)
		if cache == nil {
			return nil
		}
		for _, pos := range plan.ShardPositions(s) {
			p := int(pos)
			m, ok := plan.FinalMC(p).(*MC)
			if !ok {
				return fmt.Errorf("clustream: micro-cluster at position %d is %T, want *MC", p, plan.FinalMC(p))
			}
			cache.fill(p, plan.FinalID(p), m)
		}
		return nil
	}); err != nil {
		return err
	}
	return run.Residue(func() error {
		if err := plan.Fold(model, frags); err != nil {
			return err
		}
		if cache == nil {
			return nil
		}
		cache.finishBuild()
		return a.enforceBudgetWith(model, now, cache)
	})
}

// parallelRecomputeMin is the number of stale nearest-neighbor entries
// above which closestPair recomputes them on the reducer pool instead of
// inline. Small merge-loop iterations dirty only a handful of entries;
// the big all-dirty recomputation right after the cache is built is the
// one worth fanning out.
const parallelRecomputeMin = 32

// shardCenterCache is the budget cache the sharded path uses: the same
// entries, stamps and lazy nearest-neighbor discipline as the serial
// centerCache, but with the centroids in one contiguous row-major matrix
// so recomputation runs the early-exit flat kernel, rows are filled in
// parallel during the apply phase, and bulk recomputation fans out over
// the reducer pool. Entry order mirrors the serial cache exactly
// (admission order at build, swap-with-last on removal), which is what
// keeps strict-less/first-index-wins tie-breaking identical.
type shardCenterCache struct {
	mLast   float64
	pool    *core.ReducerPool
	ids     []uint64
	index   map[uint64]int
	centers vector.Matrix
	stamps  []float64
	nnDist  []float64
	nnID    []uint64
	// clean is the inverse of the serial cache's dirty flag so the
	// freshly built cache (all entries stale) needs no initialization
	// pass over the flags.
	clean    []bool
	dirtyIdx []int
}

// newShardCenterCache allocates a cache for n entries of the given
// dimensionality. Rows are filled positionally (and concurrently, one
// shard's positions per reducer) via fill; finishBuild completes the
// serial parts before the budget loop runs.
func newShardCenterCache(n, dim int, mLast float64, pool *core.ReducerPool) *shardCenterCache {
	return &shardCenterCache{
		mLast:   mLast,
		pool:    pool,
		ids:     make([]uint64, n),
		centers: vector.NewMatrix(n, dim),
		stamps:  make([]float64, n),
		nnDist:  make([]float64, n),
		nnID:    make([]uint64, n),
		clean:   make([]bool, n),
	}
}

// fill writes entry pos from m: its id, centroid row and relevance
// stamp. Distinct positions are written by distinct reducers, so fill is
// safe to call concurrently for disjoint positions.
func (c *shardCenterCache) fill(pos int, id uint64, m *MC) {
	c.ids[pos] = id
	c.setCenter(pos, m)
	c.stamps[pos] = m.RelevanceStamp(c.mLast)
}

// setCenter writes m's centroid into row i with the exact arithmetic of
// MC.Center (clone then scale by the precomputed 1/N), so the row's bits
// equal what the serial cache stores.
func (c *shardCenterCache) setCenter(i int, m *MC) {
	row := c.centers.Row(i)
	if m.N == 0 {
		copy(row, m.CF1X)
		return
	}
	inv := 1 / m.N
	for d := range m.CF1X {
		row[d] = m.CF1X[d] * inv
	}
}

// finishBuild completes the parts of construction that must stay serial:
// the id -> entry map.
func (c *shardCenterCache) finishBuild() {
	c.index = make(map[uint64]int, len(c.ids))
	for i, id := range c.ids {
		c.index[id] = i
	}
}

// leastRecent mirrors centerCache.leastRecent: smallest stamp, first
// index wins ties.
func (c *shardCenterCache) leastRecent() (uint64, float64, bool) {
	best := -1
	for i := range c.ids {
		if best < 0 || c.stamps[i] < c.stamps[best] {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return c.ids[best], c.stamps[best], true
}

// put mirrors centerCache.put: refresh an existing entry in place (the
// budget loop's merge destination) or append a new one.
func (c *shardCenterCache) put(m *MC) {
	if i, ok := c.index[m.Id]; ok {
		c.setCenter(i, m)
		c.stamps[i] = m.RelevanceStamp(c.mLast)
		c.clean[i] = false
		c.invalidateReferencesTo(m.Id)
		return
	}
	i := len(c.ids)
	c.ids = append(c.ids, m.Id)
	c.centers.Data = append(c.centers.Data, make([]float64, c.centers.Cols)...)
	c.centers.Rows++
	c.setCenter(i, m)
	c.stamps = append(c.stamps, m.RelevanceStamp(c.mLast))
	c.nnDist = append(c.nnDist, 0)
	c.nnID = append(c.nnID, 0)
	c.clean = append(c.clean, false)
	c.index[m.Id] = i
}

// remove mirrors centerCache.remove: swap-with-last, then invalidate
// entries whose nearest neighbor was the removed id.
func (c *shardCenterCache) remove(id uint64) {
	i, ok := c.index[id]
	if !ok {
		return
	}
	last := len(c.ids) - 1
	c.ids[i] = c.ids[last]
	copy(c.centers.Row(i), c.centers.Row(last))
	c.stamps[i] = c.stamps[last]
	c.nnDist[i] = c.nnDist[last]
	c.nnID[i] = c.nnID[last]
	c.clean[i] = c.clean[last]
	c.index[c.ids[i]] = i
	c.ids = c.ids[:last]
	c.centers.Data = c.centers.Data[:last*c.centers.Cols]
	c.centers.Rows = last
	c.stamps = c.stamps[:last]
	c.nnDist = c.nnDist[:last]
	c.nnID = c.nnID[:last]
	c.clean = c.clean[:last]
	delete(c.index, id)
	c.invalidateReferencesTo(id)
}

func (c *shardCenterCache) invalidateReferencesTo(id uint64) {
	for i := range c.ids {
		if c.nnID[i] == id {
			c.clean[i] = false
		}
	}
}

// recompute finds entry i's nearest other entry via two early-exit
// kernel scans (rows before i, then rows after i with the prefix winner
// threaded through as the bound) — one continuous scalar scan that skips
// i, bit-identical to centerCache.recompute per ArgminBelowBound's
// guarantee, including strict-less/first-index-wins tie-breaking.
func (c *shardCenterCache) recompute(i int) {
	cols := c.centers.Cols
	n := c.centers.Rows
	x := c.centers.Row(i)
	prefix := vector.Matrix{Data: c.centers.Data[:i*cols], Rows: i, Cols: cols}
	pb, pd := vector.ArgminBelowBound(x, prefix, math.Inf(1))
	suffix := vector.Matrix{Data: c.centers.Data[(i+1)*cols : n*cols], Rows: n - i - 1, Cols: cols}
	sb, sd := vector.ArgminBelowBound(x, suffix, pd)
	switch {
	case sb >= 0:
		c.nnDist[i], c.nnID[i] = sd, c.ids[i+1+sb]
	case pb >= 0:
		c.nnDist[i], c.nnID[i] = pd, c.ids[pb]
	default:
		c.nnDist[i], c.nnID[i] = math.Inf(1), 0
	}
	c.clean[i] = true
}

// closestPair mirrors centerCache.closestPair: recompute stale entries
// (fanned out over the reducer pool when there are many — each
// recompute writes only its own entry, so distinct indices are
// race-free), then take the strict-less minimum in index order.
func (c *shardCenterCache) closestPair() (uint64, uint64, bool) {
	if len(c.ids) < 2 {
		return 0, 0, false
	}
	c.dirtyIdx = c.dirtyIdx[:0]
	for i := range c.ids {
		if !c.clean[i] {
			c.dirtyIdx = append(c.dirtyIdx, i)
		}
	}
	if len(c.dirtyIdx) >= parallelRecomputeMin && c.pool != nil && c.pool.Workers() > 1 {
		_ = c.pool.Run(len(c.dirtyIdx), func(k int) error {
			c.recompute(c.dirtyIdx[k])
			return nil
		})
	} else {
		for _, i := range c.dirtyIdx {
			c.recompute(i)
		}
	}
	best := math.Inf(1)
	bi := -1
	for i := range c.ids {
		if c.nnDist[i] < best {
			best = c.nnDist[i]
			bi = i
		}
	}
	if bi < 0 {
		return 0, 0, false
	}
	return c.ids[bi], c.nnID[bi], true
}
