package diststream_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"diststream"
	"diststream/internal/stream"
	"diststream/internal/vector"
)

var errInjectedCrash = errors.New("injected driver crash")

// newFacadeAlgo builds one of the two acceptance algorithms with small,
// test-friendly parameters.
func newFacadeAlgo(t *testing.T, sys *diststream.System, name string) diststream.Algorithm {
	t.Helper()
	var (
		algo diststream.Algorithm
		err  error
	)
	switch name {
	case "clustream":
		algo, err = sys.NewCluStream(diststream.CluStreamOptions{
			Dim:              4,
			MaxMicroClusters: 20,
			NumMacro:         2,
			NewRadius:        2,
		})
	case "denstream":
		algo, err = sys.NewDenStream(diststream.DenStreamOptions{
			Dim: 4, Epsilon: 2, Mu: 4, Beta: 0.5, Lambda: 0.1,
		})
	default:
		t.Fatalf("unknown algorithm %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return algo
}

type ckptFacadeRun struct {
	stats   diststream.RunStats
	mcs     []diststream.MicroCluster
	now     diststream.Time
	assignA int
	assignB int
}

// runCheckpointedFacade executes one checkpointed run through the public
// API. addrs selects the TCP executor (nil = in-process). killAfter > 0
// fails the run with errInjectedCrash after that many batches; doResume
// loads the newest checkpoint from dir first and replays the same stream.
func runCheckpointedFacade(t *testing.T, algoName string, addrs []string, delta bool, dir string, killAfter int, doResume bool) (ckptFacadeRun, error) {
	t.Helper()
	sys, err := diststream.New(diststream.Options{
		Parallelism: 3,
		WorkerAddrs: addrs,
		RPC:         diststream.RPCOptions{DeltaBroadcast: delta},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	batches := 0
	pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, algoName), diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
		Checkpoint:   &diststream.CheckpointConfig{Dir: dir, EveryNBatches: 2},
		OnBatch: func(stream.Batch, *diststream.Model) error {
			batches++
			if killAfter > 0 && batches == killAfter {
				return errInjectedCrash
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if doResume {
		if err := pl.ResumeFrom(dir); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(blobStream(1200, 4)))
	if err != nil {
		return ckptFacadeRun{stats: stats}, err
	}
	out := ckptFacadeRun{
		stats: stats,
		mcs:   pl.Model().List(),
		now:   pl.Model().Now(),
	}
	// The offline phase must see the same model: probe the clustering at
	// the two blob centers.
	clustering, err := pl.Offline()
	if err != nil {
		t.Fatal(err)
	}
	out.assignA = clustering.Assign(vector.Vector{0, 0, 0, 0})
	out.assignB = clustering.Assign(vector.Vector{20, 20, 0, 0})
	return out, nil
}

// The tentpole acceptance scenario at the facade level: for CluStream and
// DenStream, on both the in-process and the TCP executor, a run killed
// mid-stream and resumed from its checkpoint ends bit-identical to an
// uninterrupted run — same micro-clusters, same virtual clock, same
// statistics, same offline clustering behavior.
func TestFacadeCheckpointCrashEquivalence(t *testing.T) {
	for _, algoName := range []string{"clustream", "denstream"} {
		// tcp-delta re-runs the TCP scenario with delta broadcast on: a
		// ResumeFrom restart builds a fresh executor with empty per-worker
		// ack state, so the first post-resume broadcast must go out full.
		for _, mode := range []string{"local", "tcp", "tcp-delta"} {
			t.Run(algoName+"/"+mode, func(t *testing.T) {
				var addrs []string
				if mode != "local" {
					_, addrs = startFacadeCluster(t, 3)
				}
				delta := mode == "tcp-delta"
				refDir, runDir := t.TempDir(), t.TempDir()

				reference, err := runCheckpointedFacade(t, algoName, addrs, delta, refDir, -1, false)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				_, err = runCheckpointedFacade(t, algoName, addrs, delta, runDir, 3, false)
				if !errors.Is(err, errInjectedCrash) {
					t.Fatalf("crashed run ended with %v, want the injected crash", err)
				}
				resumed, err := runCheckpointedFacade(t, algoName, addrs, delta, runDir, -1, true)
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}

				if !reflect.DeepEqual(resumed.mcs, reference.mcs) {
					t.Errorf("micro-clusters diverged: resumed %d MCs, reference %d MCs",
						len(resumed.mcs), len(reference.mcs))
				}
				if resumed.now != reference.now {
					t.Errorf("virtual clock diverged: resumed %v, reference %v", resumed.now, reference.now)
				}
				if resumed.stats.Records != reference.stats.Records ||
					resumed.stats.Batches != reference.stats.Batches ||
					resumed.stats.Checkpoints != reference.stats.Checkpoints {
					t.Errorf("stats diverged: resumed %d records / %d batches / %d checkpoints, reference %d / %d / %d",
						resumed.stats.Records, resumed.stats.Batches, resumed.stats.Checkpoints,
						reference.stats.Records, reference.stats.Batches, reference.stats.Checkpoints)
				}
				if resumed.assignA != reference.assignA || resumed.assignB != reference.assignB {
					t.Errorf("offline assignments diverged: resumed (%d,%d), reference (%d,%d)",
						resumed.assignA, resumed.assignB, reference.assignA, reference.assignB)
				}
				if reference.stats.Checkpoints == 0 {
					t.Error("reference run wrote no checkpoints")
				}
			})
		}
	}
}

func TestFacadeSpeculationOptionWiring(t *testing.T) {
	// An invalid speculation config must be rejected at System construction
	// for the local executor...
	_, err := diststream.New(diststream.Options{
		Parallelism: 2,
		Speculation: &diststream.SpeculationConfig{Multiplier: 0.5},
	})
	if err == nil {
		t.Fatal("invalid speculation config accepted")
	}
	// ...and a valid one must leave a quiet run unchanged (no stragglers,
	// so no backups launch).
	sys, err := diststream.New(diststream.Options{
		Parallelism: 2,
		Speculation: &diststream.SpeculationConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, "clustream"), diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(blobStream(600, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 500 {
		t.Errorf("Records = %d", stats.Records)
	}
	if stats.SpeculativeWins > stats.SpeculativeLaunches {
		t.Errorf("wins %d exceed launches %d", stats.SpeculativeWins, stats.SpeculativeLaunches)
	}
}
