package diststream_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"diststream"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// deltaBlobStream spreads the warm-up sample over many positions (seeding
// many micro-clusters) and then settles on two fixed points, so each
// steady-state batch absorbs into only two micro-clusters. blobStream
// cycles through every position every batch — it touches every
// micro-cluster, which makes CluStream's diffs dense and (correctly)
// forces full-snapshot fallback; this stream is what deltas are for.
func deltaBlobStream(n, dim int) []diststream.Record {
	recs := make([]diststream.Record, n)
	for i := range recs {
		v := vector.New(dim)
		switch {
		case i < 100 && i%2 == 0:
			v[0], v[1] = 0.1*float64(i%5), 0
		case i < 100:
			v[0], v[1] = 20+0.1*float64(i%5), 20
		case i%2 == 0:
			v[0], v[1] = 0.2, 0
		default:
			v[0], v[1] = 20.2, 20
		}
		recs[i] = diststream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) / 100),
			Values:    v,
			Label:     i % 2,
		}
	}
	return recs
}

type deltaFacadeRun struct {
	stats diststream.RunStats
	state []byte // gob-encoded driver model: byte equality = bit identity
}

// runDeltaFacade runs one pipeline on the figure workload over a fresh
// 3-worker TCP cluster, with delta broadcast on or off, and captures the
// final model's serialized state for bit-exact comparison.
func runDeltaFacade(t *testing.T, algoName string, delta bool) deltaFacadeRun {
	t.Helper()
	_, addrs := startFacadeCluster(t, 3)
	sys, err := diststream.New(diststream.Options{
		WorkerAddrs: addrs,
		RPC: diststream.RPCOptions{
			CallTimeout:    10 * time.Second,
			MaxRetries:     1,
			Backoff:        10 * time.Millisecond,
			DeltaBroadcast: delta,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, algoName), diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(deltaBlobStream(1200, 4)))
	if err != nil {
		t.Fatal(err)
	}
	state, err := pl.Model().EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return deltaFacadeRun{stats: stats, state: state}
}

// The satellite acceptance scenario: with RPCOptions.DeltaBroadcast on,
// the pipeline output over TCP is bit-identical to the full-snapshot path
// for both acceptance algorithms — deltas are purely a wire optimization.
func TestFacadeDeltaBroadcastBitIdentical(t *testing.T) {
	for _, algoName := range []string{"clustream", "denstream"} {
		t.Run(algoName, func(t *testing.T) {
			full := runDeltaFacade(t, algoName, false)
			withDelta := runDeltaFacade(t, algoName, true)
			if !bytes.Equal(withDelta.state, full.state) {
				t.Errorf("model state diverged: %d bytes with deltas, %d without",
					len(withDelta.state), len(full.state))
			}
			if withDelta.stats.Records != full.stats.Records || withDelta.stats.Batches != full.stats.Batches {
				t.Errorf("run shape diverged: %d records / %d batches with deltas, %d / %d without",
					withDelta.stats.Records, withDelta.stats.Batches, full.stats.Records, full.stats.Batches)
			}
			if full.stats.DeltaBroadcasts != 0 {
				t.Errorf("full-snapshot run reported %d delta broadcasts", full.stats.DeltaBroadcasts)
			}
			// CluStream leaves untouched micro-clusters bit-identical across
			// batches, so deltas must actually ship. DenStream decays every
			// micro-cluster every batch; its diffs are dense and the driver
			// legitimately falls back to full snapshots.
			if algoName == "clustream" && withDelta.stats.DeltaBroadcasts == 0 {
				t.Error("clustream run with DeltaBroadcast on shipped no deltas")
			}
		})
	}
}
