GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector.
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...
