GO ?= go

.PHONY: build test race vet check bench bench-json fuzz-smoke serve-smoke sched-smoke shard-smoke chaos-smoke subscribe-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector.
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...

# bench-json runs every benchmark (hot-path micro benches, the
# Figure-7/8 paper reproductions, and the delta-broadcast / wire-codec
# comparisons) with allocation stats and archives the results as
# machine-readable JSON. Raise BENCHTIME (e.g. 2s) for stable numbers;
# the 1x default is the CI smoke setting.
BENCHTIME ?= 1x
BENCH_JSON ?= BENCH_10.json

# The raw output lands in a temp file first so a benchmark failure (or
# a package timing out) fails the target instead of being swallowed by
# the pipe; -timeout 60m keeps the macro figure benchmarks inside the
# per-package budget at multi-second BENCHTIME settings.
bench-json:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -timeout 60m -run ^$$ ./... > bench-raw.txt
	$(GO) run ./cmd/benchjson < bench-raw.txt > $(BENCH_JSON)
	rm bench-raw.txt

# sched-smoke runs the schedule-equivalence battery under the race
# detector: the pipelined schedule must land on byte-identical model
# state to strict BSP across algorithms, executors and fault injection,
# with no data races in the overlapped driver loop or the fused dispatch.
sched-smoke:
	$(GO) test -race -count=1 -run '^TestScheduleEquivalence' .
	$(GO) test -race -count=1 ./internal/mbsp/sched/
	$(GO) test -race -count=1 -run '^TestDispatchStage' ./internal/mbsp/rpcexec/

# shard-smoke runs the sharded-global-update equivalence battery under
# the race detector: with GlobalShards set, the final model must be
# byte-identical to the serial path across {clustream,denstream} x
# {bsp,pipelined} x {local,tcp}, fall back transparently for algorithms
# without the capability, survive a checkpoint resume, and hold on the
# per-package randomized differential batteries.
shard-smoke:
	$(GO) test -race -count=1 -run '^TestSharded' .
	$(GO) test -race -count=1 -run '^TestShard|^TestReducerPool' ./internal/core/
	$(GO) test -race -count=1 -run '^TestSharded' ./internal/clustream/ ./internal/denstream/

# chaos-smoke proves elastic membership keeps the output bit-identical
# under churn: first the facade-level churn-equivalence battery (kill +
# fresh join mid-stream vs a clean fixed-membership run, both
# algorithms, both schedules) under the race detector, then the full
# supervised-subprocess demo — SIGKILL a worker every few batches, the
# supervisor restarts it, the registry readmits it, and the run must end
# with joins >= kills and a byte-identical model (non-zero exit
# otherwise).
chaos-smoke:
	$(GO) test -race -count=1 -run '^TestChurnEquivalence' .
	$(GO) test -race -count=1 ./internal/membership/ ./internal/supervise/ ./internal/backoff/
	$(GO) run -race ./cmd/diststream chaos -records 4000 -kills 2 -kill-every 3

# subscribe-smoke runs the subscription-hub battery under the race
# detector: the 64-subscriber churn test (connect/kill/reconnect with
# cursor resume while the hub publishes), the local-replica equivalence
# battery ({clustream,denstream}: a replica built from deltas must be
# gob-identical to the published model), and the hub unit tests (plan
# lifecycle, cursor resolution, shedding, coalescing, retention races).
subscribe-smoke:
	$(GO) test -race -count=1 ./internal/subscribe/
	$(GO) test -race -count=1 -run '^TestRegistryRetained|^TestRegistryEviction' ./internal/serve/

# serve-smoke boots `diststream serve` on a live pipeline and exercises
# every serving endpoint end to end: readiness, assign, clusters, macro
# caching (the repeated query must be a cache hit), metrics, the load
# generator, and graceful shutdown.
serve-smoke:
	bash scripts/serve_smoke.sh

# fuzz-smoke runs each codec fuzzer briefly: corrupted checkpoint
# snapshots, model blobs and wire frames must error, never panic — and
# the wire fuzzer additionally holds the columnar codec differentially
# equal to a gob round trip. The vector fuzzer is differential rather
# than codec-shaped: the blocked many-vs-many argmin kernel must agree
# bit-for-bit with the scalar one-vs-many reference on random matrices
# (NaN/Inf coordinates included).
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzModelStateCodec$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzWireCodec$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzBatchNearest$$' -fuzztime $(FUZZTIME) ./internal/vector
