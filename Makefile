GO ?= go

.PHONY: build test race vet check bench fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector.
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...

# fuzz-smoke runs each checkpoint-codec fuzzer briefly: corrupted
# snapshots and model blobs must error, never panic.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzModelStateCodec$$' -fuzztime $(FUZZTIME) ./internal/core
