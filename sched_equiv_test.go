// Schedule-equivalence battery: the pipelined schedule must produce
// byte-identical final model state to strict BSP — across algorithms,
// across executors, and under fault injection. This is the acceptance
// test for the version-pinning rule (batch N+1 always assigns against
// batch N's post-global-update model, however the frames are packed).
package diststream_test

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"diststream"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/stream"
)

type schedEquivRun struct {
	stats diststream.RunStats
	state []byte // gob-encoded driver model: byte equality = bit identity
}

// runSchedEquiv runs the figure workload under one schedule on the given
// executor and captures the final model's serialized state. When stall is
// set (TCP only), one worker stalls an assign task past the call timeout
// partway through the run, forcing a retry on the pipelined fused path.
func runSchedEquiv(t *testing.T, algoName, executor string, kind diststream.ScheduleKind, stall bool) schedEquivRun {
	t.Helper()
	diststream.RegisterWireTypes() // EncodeState gob-encodes algorithm MC types
	opts := diststream.Options{
		Execution: diststream.ExecutionOptions{
			Schedule:    kind,
			CallTimeout: 2 * time.Second,
			MaxRetries:  1,
			Backoff:     10 * time.Millisecond,
		},
	}
	switch executor {
	case "local":
		opts.Parallelism = 3
	case "tcp":
		workers, addrs := startFacadeCluster(t, 3)
		opts.WorkerAddrs = addrs
		if stall {
			// Stall exactly one assign task for longer than the call
			// timeout, once the run is past warm-up.
			var fired atomic.Bool
			workers[1].SetFault(func(stage string, task int) (rpcexec.Fault, time.Duration) {
				if stage == "assign" && fired.CompareAndSwap(false, true) {
					return rpcexec.FaultStall, 3 * time.Second
				}
				return rpcexec.FaultNone, 0
			})
		}
	default:
		t.Fatalf("unknown executor %q", executor)
	}
	sys, err := diststream.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, algoName), diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(deltaBlobStream(1200, 4)))
	if err != nil {
		t.Fatal(err)
	}
	state, err := pl.Model().EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return schedEquivRun{stats: stats, state: state}
}

// TestScheduleEquivalenceBitIdentical is the tentpole acceptance matrix:
// {CluStream, DenStream} x {local, TCP} — the pipelined schedule's final
// model must be byte-equal to BSP's, with the same run shape.
func TestScheduleEquivalenceBitIdentical(t *testing.T) {
	for _, algoName := range []string{"clustream", "denstream"} {
		for _, executor := range []string{"local", "tcp"} {
			t.Run(algoName+"/"+executor, func(t *testing.T) {
				bsp := runSchedEquiv(t, algoName, executor, diststream.ScheduleBSP, false)
				pip := runSchedEquiv(t, algoName, executor, diststream.SchedulePipelined, false)
				if !bytes.Equal(pip.state, bsp.state) {
					t.Errorf("model state diverged: pipelined %d bytes, bsp %d bytes",
						len(pip.state), len(bsp.state))
				}
				if pip.stats.Records != bsp.stats.Records || pip.stats.Batches != bsp.stats.Batches {
					t.Errorf("run shape diverged: pipelined %d records / %d batches, bsp %d / %d",
						pip.stats.Records, pip.stats.Batches, bsp.stats.Records, bsp.stats.Batches)
				}
				if pip.stats.UpdatedMCs != bsp.stats.UpdatedMCs || pip.stats.CreatedMCs != bsp.stats.CreatedMCs {
					t.Errorf("update accounting diverged: pipelined %d/%d, bsp %d/%d",
						pip.stats.UpdatedMCs, pip.stats.CreatedMCs, bsp.stats.UpdatedMCs, bsp.stats.CreatedMCs)
				}
			})
		}
	}
}

// TestScheduleEquivalenceUnderWorkerStall injects a worker stall longer
// than the call timeout into a pipelined TCP run: the fused dispatch must
// retry through the redial-and-replay machinery and still land on a model
// byte-equal to a clean BSP run.
func TestScheduleEquivalenceUnderWorkerStall(t *testing.T) {
	clean := runSchedEquiv(t, "clustream", "tcp", diststream.ScheduleBSP, false)
	stalled := runSchedEquiv(t, "clustream", "tcp", diststream.SchedulePipelined, true)
	if !bytes.Equal(stalled.state, clean.state) {
		t.Errorf("model state diverged under stall: pipelined %d bytes, clean bsp %d bytes",
			len(stalled.state), len(clean.state))
	}
	if stalled.stats.TaskRetries == 0 {
		t.Error("stalled run reported no task retries: the fault never engaged")
	}
	if stalled.stats.Records != clean.stats.Records || stalled.stats.Batches != clean.stats.Batches {
		t.Errorf("run shape diverged: stalled %d records / %d batches, clean %d / %d",
			stalled.stats.Records, stalled.stats.Batches, clean.stats.Records, clean.stats.Batches)
	}
}
